//===- solvers/stats.h - Solver statistics ----------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumentation shared by all solvers: right-hand-side evaluation
/// counts (the cost measure of Theorems 1 and 2), update counts, and a
/// convergence flag. Solvers never diverge silently — they stop at a step
/// budget and report `Converged = false`, which is how the paper's
/// divergence Examples 1-2 are observed programmatically.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_STATS_H
#define WARROW_SOLVERS_STATS_H

#include <cstdint>
#include <string>

namespace warrow {

class TraceSink; // trace/trace.h — solvers only pass the pointer through.

/// Counters reported by every solver run.
struct SolverStats {
  /// Number of right-hand-side evaluations performed.
  uint64_t RhsEvals = 0;
  /// Number of evaluations that changed an unknown's value.
  uint64_t Updates = 0;
  /// Number of distinct unknowns touched (== system size for dense
  /// solvers; the size of `dom` for local solvers).
  uint64_t VarsSeen = 0;
  /// High-water mark of the solver's *pending-work set*, one convention
  /// for every iteration strategy:
  ///   - queue/worklist strategies (W, SW, SLR, SLR+): largest queue size;
  ///   - sweep strategies (RR, SRR): size of the swept set, i.e. the
  ///     system size — a full sweep has every unknown pending;
  ///   - LRR: |Known| (the growing known-set IS its worklist);
  ///   - pure recursion (RLD): 0 — there is no pending set;
  ///   - two-phase drivers: max over both phases;
  ///   - the SCC-parallel solver: max over per-component queues;
  ///   - work-stealing strategies (parallel SLR+): max over the
  ///     per-component *local* priority queues, exactly as for the
  ///     SCC-parallel solver. Pool-level task deques and cross-worker
  ///     mailboxes are scheduling plumbing, not pending solver work,
  ///     and are not counted — so the figure stays comparable with the
  ///     sequential SLR+ queue high-water mark at any thread count.
  uint64_t QueueMax = 0;
  /// Destabilized unknowns whose re-evaluation was skipped because every
  /// value read through `Get` last time is pointer-identical now (the RHS
  /// cache in the local solvers; see DESIGN §6b). Not counted in RhsEvals.
  uint64_t RhsCacheHits = 0;
  /// Evaluations that ran because no cached read tuple matched.
  uint64_t RhsCacheMisses = 0;
  /// False when the evaluation budget was exhausted before stabilization.
  bool Converged = true;

  std::string str() const;
};

/// Budget and instrumentation knobs accepted by every solver.
struct SolverOptions {
  /// Hard ceiling on right-hand-side evaluations; hitting it aborts the
  /// run with `Converged = false`.
  uint64_t MaxRhsEvals = 50'000'000;
  /// When true, solvers record the sequence of (unknown, value) updates in
  /// the result (used by the paper-example tests).
  bool RecordTrace = false;
  /// Skip re-evaluating a destabilized unknown when the values it read
  /// last time are unchanged (identical consed nodes). Sound for pure
  /// right-hand sides and bit-identical either way; off = measure the
  /// uncached solver (tests cross-check the two).
  bool RhsCache = true;
  /// Worker-thread count for the parallel strategies (`parallel-sw`,
  /// `parallel-slr-plus`, ...); sequential strategies ignore it. 0 (the
  /// default) means `std::thread::hardware_concurrency()`. Benches and
  /// tests set this instead of sizing pools themselves.
  unsigned Threads = 0;
  /// Structured event sink (see trace/trace.h). Null (the default) keeps
  /// the instrumented paths compiled out of the hot loop behind a single
  /// predictable branch; the traced-off run is bit-identical to a build
  /// without tracing.
  TraceSink *Trace = nullptr;
};

} // namespace warrow

#endif // WARROW_SOLVERS_STATS_H
