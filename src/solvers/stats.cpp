//===- solvers/stats.cpp - Solver statistics -------------------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "solvers/stats.h"

using namespace warrow;

std::string SolverStats::str() const {
  std::string Out;
  Out += "evals=" + std::to_string(RhsEvals);
  Out += " updates=" + std::to_string(Updates);
  Out += " vars=" + std::to_string(VarsSeen);
  Out += " queue_max=" + std::to_string(QueueMax);
  if (RhsCacheHits || RhsCacheMisses)
    Out += " cache_hits=" + std::to_string(RhsCacheHits) + "/" +
           std::to_string(RhsCacheHits + RhsCacheMisses);
  Out += Converged ? " converged" : " DIVERGED";
  return Out;
}
