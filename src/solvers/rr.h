//===- solvers/rr.h - Round-robin solver (paper Fig. 1) ---------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic round-robin solver RR of the paper's Figure 1:
///
///     do {
///       dirty <- false;
///       forall (x in X) {
///         new <- sigma[x] ⊕ f_x(sigma);
///         if (sigma[x] != new) { sigma[x] <- new; dirty <- true; }
///       }
///     } while (dirty);
///
/// RR treats right-hand sides as black boxes (no dependency information
/// needed) and works for any combine operator ⊕ — but, as the paper's
/// Example 1 shows, it may diverge under ⊟ even for finite monotonic
/// systems. Divergence is reported via `Stats.Converged`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_RR_H
#define WARROW_SOLVERS_RR_H

#include "eqsys/dense_system.h"
#include "solvers/stats.h"

namespace warrow {

/// Runs round-robin iteration with combine operator \p Combine, starting
/// from the system's initial assignment.
template <typename D, typename C>
SolveResult<D> solveRR(const DenseSystem<D> &System, C &&Combine,
                       const SolverOptions &Options = {}) {
  SolveResult<D> Result;
  Result.Sigma = System.initialAssignment();
  Result.Stats.VarsSeen = System.size();
  auto Get = [&Result](Var Y) { return Result.Sigma[Y]; };

  bool Dirty = true;
  while (Dirty) {
    Dirty = false;
    for (Var X = 0; X < System.size(); ++X) {
      if (Result.Stats.RhsEvals >= Options.MaxRhsEvals) {
        Result.Stats.Converged = false;
        return Result;
      }
      ++Result.Stats.RhsEvals;
      D New = Combine(X, Result.Sigma[X], System.eval(X, Get));
      if (!(Result.Sigma[X] == New)) {
        Result.Sigma[X] = New;
        ++Result.Stats.Updates;
        if (Options.RecordTrace)
          Result.Trace.push_back({X, Result.Sigma[X]});
        Dirty = true;
      }
    }
  }
  return Result;
}

} // namespace warrow

#endif // WARROW_SOLVERS_RR_H
