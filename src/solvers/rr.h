//===- solvers/rr.h - Round-robin solver (paper Fig. 1) ---------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic round-robin solver RR of the paper's Figure 1:
///
///     do {
///       dirty <- false;
///       forall (x in X) {
///         new <- sigma[x] ⊕ f_x(sigma);
///         if (sigma[x] != new) { sigma[x] <- new; dirty <- true; }
///       }
///     } while (dirty);
///
/// RR treats right-hand sides as black boxes (no dependency information
/// needed) and works for any combine operator ⊕ — but, as the paper's
/// Example 1 shows, it may diverge under ⊟ even for finite monotonic
/// systems. Divergence is reported via `Stats.Converged`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_RR_H
#define WARROW_SOLVERS_RR_H

#include "eqsys/dense_system.h"
#include "solvers/stats.h"
#include "trace/trace.h"

namespace warrow {

/// Runs round-robin iteration with combine operator \p Combine, starting
/// from the system's initial assignment.
template <typename D, typename C>
SolveResult<D> solveRR(const DenseSystem<D> &System, C &&Combine,
                       const SolverOptions &Options = {}) {
  SolveResult<D> Result;
  Result.Sigma = System.initialAssignment();
  Result.Stats.VarsSeen = System.size();
  Var Current = 0; // Unknown under evaluation, for dependency events.
  auto Get = [&Result, &Options, &Current](Var Y) {
    if (Options.Trace)
      Options.Trace->event(TraceEvent::dependency(Current, Y));
    return Result.Sigma[Y];
  };

  bool Dirty = true;
  while (Dirty) {
    Dirty = false;
    for (Var X = 0; X < System.size(); ++X) {
      if (Result.Stats.RhsEvals >= Options.MaxRhsEvals) {
        Result.Stats.Converged = false;
        return Result;
      }
      ++Result.Stats.RhsEvals;
      if (Options.Trace) {
        Current = X;
        Options.Trace->event(TraceEvent::rhsBegin(X));
      }
      D Rhs = System.eval(X, Get);
      if (Options.Trace)
        Options.Trace->event(TraceEvent::rhsEnd(X));
      D New = Combine(X, Result.Sigma[X], Rhs);
      if (!(Result.Sigma[X] == New)) {
        if (Options.Trace)
          Options.Trace->event(
              TraceEvent::update(X, Result.Sigma[X], Rhs, New));
        Result.Sigma[X] = New;
        ++Result.Stats.Updates;
        if (Options.RecordTrace)
          Result.Trace.push_back({X, Result.Sigma[X]});
        Dirty = true;
      }
    }
  }
  return Result;
}

} // namespace warrow

#endif // WARROW_SOLVERS_RR_H
