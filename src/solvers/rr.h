//===- solvers/rr.h - Round-robin solver (paper Fig. 1) ---------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic round-robin solver RR of the paper's Figure 1 — a thin
/// shim over the engine's RoundRobin strategy (engine/strategies/
/// round_robin.h), kept for source compatibility. Registered as "rr".
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_RR_H
#define WARROW_SOLVERS_RR_H

#include "engine/strategies/round_robin.h"

#include <utility>

namespace warrow {

/// Runs round-robin iteration with combine operator \p Combine, starting
/// from the system's initial assignment.
template <typename D, typename C>
SolveResult<D> solveRR(const DenseSystem<D> &System, C &&Combine,
                       const SolverOptions &Options = {}) {
  return engine::runRoundRobin(System, std::forward<C>(Combine), Options);
}

} // namespace warrow

#endif // WARROW_SOLVERS_RR_H
