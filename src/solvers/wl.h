//===- solvers/wl.h - Worklist solver (paper Fig. 2) ------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic worklist solver W of the paper's Figure 2 — a thin shim
/// over the engine's Worklist strategy (engine/strategies/worklist.h),
/// which also defines WorklistDiscipline. Registered as "w" / "w-fifo".
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_WL_H
#define WARROW_SOLVERS_WL_H

#include "engine/strategies/worklist.h"

#include <utility>

namespace warrow {

/// Runs worklist iteration with combine operator \p Combine.
template <typename D, typename C>
SolveResult<D> solveW(const DenseSystem<D> &System, C &&Combine,
                      const SolverOptions &Options = {},
                      WorklistDiscipline Discipline =
                          WorklistDiscipline::Lifo) {
  return engine::runWorklist(System, std::forward<C>(Combine), Options,
                             Discipline);
}

} // namespace warrow

#endif // WARROW_SOLVERS_WL_H
