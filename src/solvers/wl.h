//===- solvers/wl.h - Worklist solver (paper Fig. 2) ------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic worklist solver W of the paper's Figure 2:
///
///     W <- X;
///     while (W != {}) {
///       x <- extract(W);
///       new <- sigma[x] ⊕ f_x(sigma);
///       if (sigma[x] != new) { sigma[x] <- new; W <- W ∪ infl_x; }
///     }
///
/// W needs the declared dependency sets to compute `infl`. The worklist is
/// a *set* maintained with a LIFO extraction discipline (the discipline
/// under which the paper's Example 2 diverges with ⊟): extraction pops the
/// most recently pushed absent unknown; pushing an unknown already present
/// leaves its position unchanged. On update of x the influence set is
/// pushed with x itself last, so x is re-extracted first — the paper's
/// precaution for non-idempotent ⊕.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_WL_H
#define WARROW_SOLVERS_WL_H

#include "eqsys/dense_system.h"
#include "solvers/stats.h"
#include "trace/trace.h"

#include <deque>
#include <vector>

namespace warrow {

/// Extraction discipline of the worklist (the paper leaves it open; its
/// Example 2 uses LIFO).
enum class WorklistDiscipline { Lifo, Fifo };

/// Runs worklist iteration with combine operator \p Combine.
template <typename D, typename C>
SolveResult<D> solveW(const DenseSystem<D> &System, C &&Combine,
                      const SolverOptions &Options = {},
                      WorklistDiscipline Discipline =
                          WorklistDiscipline::Lifo) {
  SolveResult<D> Result;
  Result.Sigma = System.initialAssignment();
  Result.Stats.VarsSeen = System.size();
  Var Current = 0; // Unknown under evaluation, for dependency events.
  auto Get = [&Result, &Options, &Current](Var Y) {
    if (Options.Trace)
      Options.Trace->event(TraceEvent::dependency(Current, Y));
    return Result.Sigma[Y];
  };

  // A deque covers both disciplines: LIFO pops the back, FIFO the front.
  std::deque<Var> Work;
  std::vector<char> InWork(System.size(), 0);
  auto Push = [&](Var Y) {
    if (InWork[Y])
      return;
    InWork[Y] = 1;
    Work.push_back(Y);
    if (Options.Trace)
      Options.Trace->event(TraceEvent::enqueue(Y));
    if (Work.size() > Result.Stats.QueueMax)
      Result.Stats.QueueMax = Work.size();
  };
  if (Discipline == WorklistDiscipline::Lifo) {
    // All unknowns, first variable on top of the stack.
    for (Var X = System.size(); X > 0; --X)
      Push(X - 1);
  } else {
    for (Var X = 0; X < System.size(); ++X)
      Push(X);
  }

  while (!Work.empty()) {
    if (Result.Stats.RhsEvals >= Options.MaxRhsEvals) {
      Result.Stats.Converged = false;
      return Result;
    }
    Var X;
    if (Discipline == WorklistDiscipline::Lifo) {
      X = Work.back();
      Work.pop_back();
    } else {
      X = Work.front();
      Work.pop_front();
    }
    InWork[X] = 0;
    ++Result.Stats.RhsEvals;
    if (Options.Trace) {
      Current = X;
      Options.Trace->event(TraceEvent::dequeue(X));
      Options.Trace->event(TraceEvent::rhsBegin(X));
    }
    D Rhs = System.eval(X, Get);
    if (Options.Trace)
      Options.Trace->event(TraceEvent::rhsEnd(X));
    D New = Combine(X, Result.Sigma[X], Rhs);
    if (Result.Sigma[X] == New)
      continue;
    if (Options.Trace)
      Options.Trace->event(TraceEvent::update(X, Result.Sigma[X], Rhs, New));
    Result.Sigma[X] = New;
    ++Result.Stats.Updates;
    if (Options.RecordTrace)
      Result.Trace.push_back({X, Result.Sigma[X]});
    // Push influenced unknowns; X itself last so it is re-evaluated first.
    for (Var Y : System.influenced(X)) {
      if (Y == X)
        continue;
      if (Options.Trace)
        Options.Trace->event(TraceEvent::destabilize(Y, X));
      Push(Y);
    }
    if (Options.Trace)
      Options.Trace->event(TraceEvent::destabilize(X, X));
    Push(X);
  }
  return Result;
}

} // namespace warrow

#endif // WARROW_SOLVERS_WL_H
