//===- solvers/slr.h - Structured local recursion (Fig. 6) ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured local recursive solver SLR of the paper's Figure 6
/// (Theorem 3) — a thin shim over the engine's unified SlrEngine
/// (engine/strategies/slr.h), instantiated without side-effect support.
/// Registered as "slr".
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_SLR_H
#define WARROW_SOLVERS_SLR_H

#include "engine/strategies/slr.h"

#include <type_traits>
#include <utility>

namespace warrow {

/// SLR solver engine. Kept as a class so that tests and the experiment
/// drivers can inspect the discovered domain, keys, and influence sets.
template <typename V, typename D, typename C>
using SlrSolver = engine::SlrEngine<V, D, C, /*WithSide=*/false>;

/// Convenience wrapper running SLR once.
template <typename V, typename D, typename C>
PartialSolution<V, D> solveSLR(const LocalSystem<V, D> &System, const V &X0,
                               C &&Combine, const SolverOptions &Options = {}) {
  SlrSolver<V, D, std::decay_t<C>> Solver(System, std::forward<C>(Combine),
                                          Options);
  return Solver.solveFor(X0);
}

} // namespace warrow

#endif // WARROW_SOLVERS_SLR_H
