//===- solvers/slr.h - The local solver SLR (paper Fig. 6) ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured local recursive solver SLR, the paper's Figure 6 and
/// main contribution on the algorithmic side:
///
///     let rec solve x =
///       if x ∉ stable then
///         stable <- stable ∪ {x};
///         tmp <- sigma[x] ⊕ f_x (eval x);
///         if tmp != sigma[x] then
///           W <- infl[x];
///           foreach y in W do add Q y;
///           sigma[x] <- tmp; infl[x] <- {x}; stable <- stable \ W;
///           while (Q != {}) ∧ (min_key Q <= key[x]) do
///             solve (extract_min Q)
///     and init y =
///       dom <- dom ∪ {y}; key[y] <- -count; count++;
///       infl[y] <- {y}; sigma[y] <- sigma_0[y]
///     and eval x y =
///       if y ∉ dom then init y; solve y end;
///       infl[y] <- infl[y] ∪ {x};
///       sigma[y]
///     in ... init x0; solve x0; sigma
///
/// Differences from RLD that make SLR a *generic* local solver (and
/// terminating for monotonic systems under ⊟, Theorem 3):
///  - `eval` recursively solves only *fresh* unknowns, so the evaluation
///    of a right-hand side is effectively atomic;
///  - every unknown always depends on itself (`infl[y] ∋ y`);
///  - destabilized unknowns go into a global priority queue ordered by
///    discovery time (fresher unknowns = smaller key = solved first), and
///    `solve x` drains only entries with key <= key[x].
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_SLR_H
#define WARROW_SOLVERS_SLR_H

#include "eqsys/local_system.h"
#include "solvers/stats.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace warrow {

/// SLR solver engine. Kept as a class so that tests and the experiment
/// drivers can inspect the discovered domain, keys, and influence sets.
template <typename V, typename D, typename C> class SlrSolver {
public:
  SlrSolver(const LocalSystem<V, D> &System, C Combine,
            const SolverOptions &Options = {})
      : System(System), Combine(std::move(Combine)), Options(Options) {}

  /// Solves for \p X0 and returns the partial ⊕-solution.
  PartialSolution<V, D> solveFor(const V &X0) {
    init(X0);
    solve(X0);
    // Complete any work left in the queue (possible when destabilizations
    // race with evaluations that end up not changing any value up the
    // recursion; the final assignment must be a partial ⊕-solution).
    while (!Failed && !Queue.empty()) {
      int64_t MinKey = *Queue.begin();
      Queue.erase(Queue.begin());
      solve(KeyToVar.at(MinKey));
    }
    PartialSolution<V, D> Result;
    Result.Sigma = Sigma;
    Result.Stats = Stats;
    Result.Stats.Converged = !Failed;
    Result.Stats.VarsSeen = Sigma.size();
    return Result;
  }

  const std::unordered_map<V, D> &assignment() const { return Sigma; }
  const std::unordered_map<V, int64_t> &keys() const { return Key; }

private:
  void init(const V &Y) {
    assert(!Sigma.count(Y) && "double init");
    Key[Y] = -Count;
    KeyToVar.emplace(-Count, Y);
    ++Count;
    Infl[Y] = {Y};
    Sigma.emplace(Y, System.initial(Y));
  }

  void addQ(const V &Y) {
    Queue.insert(Key.at(Y));
    if (Queue.size() > Stats.QueueMax)
      Stats.QueueMax = Queue.size();
  }

  void solve(const V &X) {
    if (Failed || Stable.count(X))
      return;
    Stable.insert(X);
    if (Stats.RhsEvals >= Options.MaxRhsEvals) {
      Failed = true;
      return;
    }
    ++Stats.RhsEvals;
    typename LocalSystem<V, D>::Get Eval = [this, X](const V &Y) -> D {
      return eval(X, Y);
    };
    D New = System.rhs(X)(Eval);
    if (Failed)
      return;
    D Tmp = Combine(X, Sigma.at(X), New);
    if (!(Tmp == Sigma.at(X))) {
      std::unordered_set<V> W = std::move(Infl[X]);
      for (const V &Y : W)
        addQ(Y);
      Sigma[X] = std::move(Tmp);
      ++Stats.Updates;
      Infl[X] = {X};
      for (const V &Y : W)
        Stable.erase(Y);
      int64_t KeyX = Key.at(X);
      while (!Failed && !Queue.empty() && *Queue.begin() <= KeyX) {
        int64_t MinKey = *Queue.begin();
        Queue.erase(Queue.begin());
        solve(KeyToVar.at(MinKey));
      }
    }
  }

  D eval(const V &X, const V &Y) {
    if (!Sigma.count(Y)) {
      init(Y);
      solve(Y);
    }
    Infl[Y].insert(X);
    return Sigma.at(Y);
  }

  const LocalSystem<V, D> &System;
  C Combine;
  SolverOptions Options;

  std::unordered_map<V, D> Sigma; // dom = keys(Sigma).
  std::unordered_map<V, int64_t> Key;
  std::unordered_map<int64_t, V> KeyToVar;
  std::unordered_map<V, std::unordered_set<V>> Infl;
  std::unordered_set<V> Stable;
  std::set<int64_t> Queue; // Ordered: *begin() is min_key.
  int64_t Count = 0;
  SolverStats Stats;
  bool Failed = false;
};

/// Convenience wrapper running SLR once.
template <typename V, typename D, typename C>
PartialSolution<V, D> solveSLR(const LocalSystem<V, D> &System, const V &X0,
                               C &&Combine, const SolverOptions &Options = {}) {
  SlrSolver<V, D, std::decay_t<C>> Solver(System, std::forward<C>(Combine),
                                          Options);
  return Solver.solveFor(X0);
}

} // namespace warrow

#endif // WARROW_SOLVERS_SLR_H
