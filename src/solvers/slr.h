//===- solvers/slr.h - The local solver SLR (paper Fig. 6) ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured local recursive solver SLR, the paper's Figure 6 and
/// main contribution on the algorithmic side:
///
///     let rec solve x =
///       if x ∉ stable then
///         stable <- stable ∪ {x};
///         tmp <- sigma[x] ⊕ f_x (eval x);
///         if tmp != sigma[x] then
///           W <- infl[x];
///           foreach y in W do add Q y;
///           sigma[x] <- tmp; infl[x] <- {x}; stable <- stable \ W;
///           while (Q != {}) ∧ (min_key Q <= key[x]) do
///             solve (extract_min Q)
///     and init y =
///       dom <- dom ∪ {y}; key[y] <- -count; count++;
///       infl[y] <- {y}; sigma[y] <- sigma_0[y]
///     and eval x y =
///       if y ∉ dom then init y; solve y end;
///       infl[y] <- infl[y] ∪ {x};
///       sigma[y]
///     in ... init x0; solve x0; sigma
///
/// Differences from RLD that make SLR a *generic* local solver (and
/// terminating for monotonic systems under ⊟, Theorem 3):
///  - `eval` recursively solves only *fresh* unknowns, so the evaluation
///    of a right-hand side is effectively atomic;
///  - every unknown always depends on itself (`infl[y] ∋ y`);
///  - destabilized unknowns go into a global priority queue ordered by
///    discovery time (fresher unknowns = smaller key = solved first), and
///    `solve x` drains only entries with key <= key[x].
///
/// Representation: unknowns are interned into dense *slots* in discovery
/// order, so `key[y] = -slot(y)` and every piece of bookkeeping —
/// sigma, stable, infl, the priority queue — is a flat vector indexed by
/// slot instead of a node-based map keyed by V. The single hash lookup
/// left on the hot path is the `y ∈ dom` test in `eval`. The queue is an
/// indexed binary heap over slots; since keys are negated slots, the
/// minimum key is the *maximum* slot, hence the `std::greater` instance.
/// `infl` vectors may transiently hold duplicate entries (the set-insert
/// of Fig. 6 is approximated by an append with a cheap back-check);
/// duplicates are harmless because destabilization and re-queueing are
/// both idempotent, and every update of y resets `infl[y]`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_SLR_H
#define WARROW_SOLVERS_SLR_H

#include "eqsys/local_system.h"
#include "solvers/stats.h"
#include "support/indexed_heap.h"
#include "trace/trace.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace warrow {

/// SLR solver engine. Kept as a class so that tests and the experiment
/// drivers can inspect the discovered domain, keys, and influence sets.
template <typename V, typename D, typename C> class SlrSolver {
public:
  SlrSolver(const LocalSystem<V, D> &System, C Combine,
            const SolverOptions &Options = {})
      : System(System), Combine(std::move(Combine)), Options(Options) {}

  /// Solves for \p X0 and returns the partial ⊕-solution.
  PartialSolution<V, D> solveFor(const V &X0) {
    solve(internFresh(X0));
    // Complete any work left in the queue (possible when destabilizations
    // race with evaluations that end up not changing any value up the
    // recursion; the final assignment must be a partial ⊕-solution).
    while (!Failed && !Queue.empty())
      solve(popQ());
    PartialSolution<V, D> Result;
    Result.Sigma.reserve(VarOf.size());
    for (uint32_t S = 0; S < VarOf.size(); ++S)
      Result.Sigma.emplace(VarOf[S], SigmaV[S]);
    Result.Stats = Stats;
    Result.Stats.Converged = !Failed;
    Result.Stats.VarsSeen = VarOf.size();
    if (Options.Trace)
      Result.DiscoveryOrder = VarOf;
    return Result;
  }

  /// Discovered unknowns in discovery order (slot order); `keys` of the
  /// paper are the negated positions in this sequence.
  const std::vector<V> &discoveryOrder() const { return VarOf; }

  /// Materializes the paper's key map (diagnostics/tests only).
  std::unordered_map<V, int64_t> keys() const {
    std::unordered_map<V, int64_t> K;
    K.reserve(VarOf.size());
    for (uint32_t S = 0; S < VarOf.size(); ++S)
      K.emplace(VarOf[S], -static_cast<int64_t>(S));
    return K;
  }

  /// Materializes the current assignment (diagnostics/tests only).
  std::unordered_map<V, D> assignment() const {
    std::unordered_map<V, D> A;
    A.reserve(VarOf.size());
    for (uint32_t S = 0; S < VarOf.size(); ++S)
      A.emplace(VarOf[S], SigmaV[S]);
    return A;
  }

private:
  /// Interns \p Y, which must be fresh, into the next slot (`init` of
  /// Fig. 6: key <- -count, infl <- {y}, sigma <- sigma_0).
  uint32_t internFresh(const V &Y) {
    assert(!SlotOf.count(Y) && "double init");
    uint32_t S = static_cast<uint32_t>(VarOf.size());
    SlotOf.emplace(Y, S);
    VarOf.push_back(Y);
    SigmaV.push_back(System.initial(Y));
    InflV.push_back({S});
    StableV.push_back(0);
    CacheV.emplace_back();
    Queue.resizeUniverse(VarOf.size());
    return S;
  }

  void addQ(uint32_t S) {
    if (Queue.push(S) && Options.Trace)
      Options.Trace->event(TraceEvent::enqueue(S));
    if (Queue.size() > Stats.QueueMax)
      Stats.QueueMax = Queue.size();
  }

  uint32_t popQ() {
    uint32_t S = Queue.pop();
    if (Options.Trace)
      Options.Trace->event(TraceEvent::dequeue(S));
    return S;
  }

  void solve(uint32_t XS) {
    if (Failed || StableV[XS])
      return;
    StableV[XS] = 1;
    // Cache hits count against the budget too: on a divergent system the
    // hit path must not be able to loop past MaxRhsEvals for free. On
    // convergent runs hits replace evals one-for-one, so the sum equals
    // the uncached eval count and Converged is bit-identical either way.
    if (Stats.RhsEvals + Stats.RhsCacheHits >= Options.MaxRhsEvals) {
      Failed = true;
      return;
    }
    D New = evaluate(XS);
    if (Failed)
      return;
    D Tmp = Combine(VarOf[XS], SigmaV[XS], New);
    if (!(Tmp == SigmaV[XS])) {
      if (Options.Trace)
        Options.Trace->event(TraceEvent::update(XS, SigmaV[XS], New, Tmp));
      std::vector<uint32_t> W = std::move(InflV[XS]);
      if (Options.Trace)
        for (uint32_t YS : W)
          Options.Trace->event(TraceEvent::destabilize(YS, XS));
      for (uint32_t YS : W)
        addQ(YS);
      SigmaV[XS] = std::move(Tmp);
      ++Stats.Updates;
      InflV[XS] = {XS};
      for (uint32_t YS : W)
        StableV[YS] = 0;
      // min_key Q <= key[x]  ⟺  max slot in Q >= slot(x).
      while (!Failed && !Queue.empty() && Queue.top() >= XS)
        solve(popQ());
    }
  }

  /// f_x(eval x), answered from the read cache when every value the last
  /// evaluation of x read through `Get` is unchanged. Right-hand sides
  /// are pure in the instrumented-Get sense (DESIGN §3): same reads, same
  /// result — so a hit returns the identical value the evaluation would
  /// have produced and the solver's behavior is bit-for-bit unchanged.
  D evaluate(uint32_t XS) {
    if (Options.RhsCache && CacheV[XS].Valid && cacheIsFresh(XS)) {
      ++Stats.RhsCacheHits;
      if (Options.Trace)
        Options.Trace->event(TraceEvent::rhsBegin(XS));
      // Replay the influence registrations the skipped evaluation would
      // have performed (same order, same back-dedup): dropping them
      // would lose future destabilizations of x. Every update of y
      // resets infl[y], so prior registrations may be gone by now.
      for (const auto &R : CacheV[XS].Reads) {
        std::vector<uint32_t> &I = InflV[R.first];
        if (I.empty() || I.back() != XS)
          I.push_back(XS);
        if (Options.Trace)
          Options.Trace->event(TraceEvent::dependency(XS, R.first));
      }
      if (Options.Trace)
        Options.Trace->event(TraceEvent::rhsEnd(XS, /*FromCache=*/true));
      return CacheV[XS].Value;
    }
    if (Options.RhsCache)
      ++Stats.RhsCacheMisses;
    ++Stats.RhsEvals;
    if (Options.Trace)
      Options.Trace->event(TraceEvent::rhsBegin(XS));
    // Reads lives in this frame: CacheV may reallocate while the RHS
    // recursively interns fresh unknowns, so no reference into it may be
    // held across the rhs() call (same reason everything below indexes).
    std::vector<std::pair<uint32_t, D>> Reads;
    typename LocalSystem<V, D>::Get Eval = [this, XS,
                                            &Reads](const V &Y) -> D {
      uint32_t YS = eval(XS, Y);
      if (Options.RhsCache)
        Reads.emplace_back(YS, SigmaV[YS]);
      return SigmaV[YS];
    };
    D New = System.rhs(VarOf[XS])(Eval);
    if (Options.Trace)
      Options.Trace->event(TraceEvent::rhsEnd(XS));
    if (!Failed && Options.RhsCache)
      CacheV[XS] = CacheEntry{std::move(Reads), New, true};
    return New;
  }

  /// True when every recorded read of x's last evaluation would return
  /// the identical value today. With hash-consed environments each check
  /// is (almost always) a pointer or memoized-hash compare.
  bool cacheIsFresh(uint32_t XS) const {
    for (const auto &R : CacheV[XS].Reads)
      if (!(R.second == SigmaV[R.first]))
        return false;
    return true;
  }

  /// `eval x y` of Fig. 6 minus the value read; returns y's slot.
  uint32_t eval(uint32_t XS, const V &Y) {
    uint32_t YS;
    auto It = SlotOf.find(Y);
    if (It == SlotOf.end()) {
      YS = internFresh(Y);
      solve(YS);
    } else {
      YS = It->second;
    }
    // infl[y] ∪= {x}: append with a cheap duplicate filter; exact set
    // semantics are not required (see file comment).
    std::vector<uint32_t> &I = InflV[YS];
    if (I.empty() || I.back() != XS)
      I.push_back(XS);
    if (Options.Trace)
      Options.Trace->event(TraceEvent::dependency(XS, YS));
    return YS;
  }

  /// Last evaluation of one unknown: the (slot, value) pairs read through
  /// `Get`, in read order with duplicates, and the RHS result. Copies of
  /// consed values are ref-count bumps, so keeping them is cheap.
  struct CacheEntry {
    std::vector<std::pair<uint32_t, D>> Reads;
    D Value{};
    bool Valid = false;
  };

  const LocalSystem<V, D> &System;
  C Combine;
  SolverOptions Options;

  // Dense slot-indexed state; slots are discovery order (`count`).
  std::unordered_map<V, uint32_t> SlotOf; // dom = keys(SlotOf).
  std::vector<V> VarOf;
  std::vector<D> SigmaV;
  std::vector<std::vector<uint32_t>> InflV;
  std::vector<uint8_t> StableV;
  std::vector<CacheEntry> CacheV;
  IndexedHeap<std::greater<uint32_t>> Queue; // top() = max slot = min key.
  SolverStats Stats;
  bool Failed = false;
};

/// Convenience wrapper running SLR once.
template <typename V, typename D, typename C>
PartialSolution<V, D> solveSLR(const LocalSystem<V, D> &System, const V &X0,
                               C &&Combine, const SolverOptions &Options = {}) {
  SlrSolver<V, D, std::decay_t<C>> Solver(System, std::forward<C>(Combine),
                                          Options);
  return Solver.solveFor(X0);
}

} // namespace warrow

#endif // WARROW_SOLVERS_SLR_H
