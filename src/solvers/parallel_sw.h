//===- solvers/parallel_sw.h - SCC-parallel structured worklist -*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SW run in parallel over the condensation of the dependency graph — a
/// thin shim over the engine's SccParallel strategy
/// (engine/strategies/scc_parallel.h), which also defines
/// ParallelOptions. Registered as "sw-parallel".
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SOLVERS_PARALLEL_SW_H
#define WARROW_SOLVERS_PARALLEL_SW_H

#include "engine/strategies/scc_parallel.h"

#include <utility>

namespace warrow {

/// Runs SW in parallel over the condensation of \p System's dependency
/// graph. \p Combine is copied once per component, so stateful operators
/// (whose state is keyed per unknown, like DegradingWarrowCombine) stay
/// correct: every unknown lives in exactly one component.
///
/// Pass \p POpts.Threads = 1 for a single worker (still scheduled via
/// the condensation) — useful to separate scheduling effects from
/// parallelism in benchmarks.
template <typename D, typename C>
SolveResult<D> solveParallelSW(const DenseSystem<D> &System, C Combine,
                               const ParallelOptions &POpts = {},
                               const SolverOptions &Options = {}) {
  return engine::runSccParallel(System, std::move(Combine), POpts, Options);
}

} // namespace warrow

#endif // WARROW_SOLVERS_PARALLEL_SW_H
