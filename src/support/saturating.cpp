//===- support/saturating.cpp - Saturating 64-bit arithmetic --------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/saturating.h"

#include <cassert>

using namespace warrow;

namespace {
constexpr int64_t IntMin = std::numeric_limits<int64_t>::min();
constexpr int64_t IntMax = std::numeric_limits<int64_t>::max();
} // namespace

int64_t warrow::satAdd64(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return B > 0 ? IntMax : IntMin;
  return R;
}

int64_t warrow::satSub64(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_sub_overflow(A, B, &R))
    return B < 0 ? IntMax : IntMin;
  return R;
}

int64_t warrow::satMul64(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return (A > 0) == (B > 0) ? IntMax : IntMin;
  return R;
}

int64_t warrow::satNeg64(int64_t A) { return A == IntMin ? IntMax : -A; }

Bound warrow::operator+(Bound A, Bound B) {
  assert(!(A.isPosInf() && B.isNegInf()) && !(A.isNegInf() && B.isPosInf()) &&
         "adding opposite infinities");
  if (A.isPosInf() || B.isPosInf())
    return Bound::posInf();
  if (A.isNegInf() || B.isNegInf())
    return Bound::negInf();
  return Bound(satAdd64(A.Value, B.Value));
}

Bound warrow::operator-(Bound A, Bound B) {
  assert(!(A.isPosInf() && B.isPosInf()) && !(A.isNegInf() && B.isNegInf()) &&
         "subtracting equal infinities");
  if (A.isPosInf() || B.isNegInf())
    return Bound::posInf();
  if (A.isNegInf() || B.isPosInf())
    return Bound::negInf();
  return Bound(satSub64(A.Value, B.Value));
}

Bound warrow::operator*(Bound A, Bound B) {
  // 0 * inf is defined as 0: intervals use it for [0,0] * [a,b].
  if (A.isFinite() && A.Value == 0)
    return Bound(0);
  if (B.isFinite() && B.Value == 0)
    return Bound(0);
  bool Negative = (A < Bound(0)) != (B < Bound(0));
  if (!A.isFinite() || !B.isFinite())
    return Negative ? Bound::negInf() : Bound::posInf();
  return Bound(satMul64(A.Value, B.Value));
}

Bound warrow::operator/(Bound A, Bound B) {
  assert(!(B.isFinite() && B.Value == 0) && "division by zero bound");
  if (!B.isFinite()) {
    // finite / inf -> 0; inf / inf is not needed by the interval code, but
    // define it as saturated to keep the function total.
    if (A.isFinite())
      return Bound(0);
    return (A > Bound(0)) == (B > Bound(0)) ? Bound::posInf()
                                            : Bound::negInf();
  }
  if (A.isPosInf())
    return B.Value > 0 ? Bound::posInf() : Bound::negInf();
  if (A.isNegInf())
    return B.Value > 0 ? Bound::negInf() : Bound::posInf();
  if (A.Value == IntMin && B.Value == -1)
    return Bound(IntMax); // Saturate the single overflowing case.
  return Bound(A.Value / B.Value);
}

Bound warrow::operator-(Bound A) {
  if (A.isPosInf())
    return Bound::negInf();
  if (A.isNegInf())
    return Bound::posInf();
  return Bound(satNeg64(A.Value));
}

Bound Bound::succ() const {
  if (!isFinite())
    return *this;
  return Bound(satAdd64(Value, 1));
}

Bound Bound::pred() const {
  if (!isFinite())
    return *this;
  return Bound(satSub64(Value, 1));
}

std::string Bound::str() const {
  if (isNegInf())
    return "-inf";
  if (isPosInf())
    return "+inf";
  return std::to_string(Value);
}
