//===- support/saturating.h - Saturating 64-bit arithmetic ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Saturating arithmetic on `int64_t` extended with +/- infinity, used as
/// the bound type of the interval domain. The two extreme representable
/// values act as the infinities; all operations saturate towards them and
/// never overflow (UB-free).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SUPPORT_SATURATING_H
#define WARROW_SUPPORT_SATURATING_H

#include <cstdint>
#include <limits>
#include <string>

namespace warrow {

/// An extended integer: int64 where the extreme values denote -inf/+inf.
///
/// `Bound` forms a totally ordered set with -inf as least and +inf as
/// greatest element; arithmetic saturates. Division and modulo follow C
/// semantics for finite operands (truncation towards zero) and are only
/// called with nonzero divisors by the interval code.
class Bound {
public:
  /// Finite bound. Values beyond the finite range clamp to the infinities.
  constexpr Bound() : Value(0) {}
  constexpr explicit Bound(int64_t V) : Value(V) {}

  static constexpr Bound negInf() {
    return Bound(std::numeric_limits<int64_t>::min());
  }
  static constexpr Bound posInf() {
    return Bound(std::numeric_limits<int64_t>::max());
  }

  constexpr bool isNegInf() const {
    return Value == std::numeric_limits<int64_t>::min();
  }
  constexpr bool isPosInf() const {
    return Value == std::numeric_limits<int64_t>::max();
  }
  constexpr bool isFinite() const { return !isNegInf() && !isPosInf(); }

  /// Finite payload; must only be called on finite bounds.
  constexpr int64_t finite() const { return Value; }

  /// Raw representation (infinities included); useful for hashing.
  constexpr int64_t raw() const { return Value; }

  friend constexpr bool operator==(Bound A, Bound B) {
    return A.Value == B.Value;
  }
  friend constexpr bool operator!=(Bound A, Bound B) {
    return A.Value != B.Value;
  }
  friend constexpr bool operator<(Bound A, Bound B) {
    return A.Value < B.Value;
  }
  friend constexpr bool operator<=(Bound A, Bound B) {
    return A.Value <= B.Value;
  }
  friend constexpr bool operator>(Bound A, Bound B) {
    return A.Value > B.Value;
  }
  friend constexpr bool operator>=(Bound A, Bound B) {
    return A.Value >= B.Value;
  }

  friend Bound operator+(Bound A, Bound B);
  friend Bound operator-(Bound A, Bound B);
  friend Bound operator*(Bound A, Bound B);
  /// Truncating division; \p B must be nonzero and finite or infinite.
  friend Bound operator/(Bound A, Bound B);
  friend Bound operator-(Bound A);

  /// Bound incremented/decremented by one (saturating; infinities fixed).
  Bound succ() const;
  Bound pred() const;

  friend Bound min(Bound A, Bound B) { return A.Value <= B.Value ? A : B; }
  friend Bound max(Bound A, Bound B) { return A.Value >= B.Value ? A : B; }

  /// Renders "-inf", "+inf", or the decimal value.
  std::string str() const;

private:
  int64_t Value;
};

// Namespace-scope declarations of the friend operators (so qualified
// out-of-line definitions match).
Bound operator+(Bound A, Bound B);
Bound operator-(Bound A, Bound B);
Bound operator*(Bound A, Bound B);
Bound operator/(Bound A, Bound B);
Bound operator-(Bound A);

/// Saturating helpers on raw int64 (exposed for tests).
int64_t satAdd64(int64_t A, int64_t B);
int64_t satSub64(int64_t A, int64_t B);
int64_t satMul64(int64_t A, int64_t B);
int64_t satNeg64(int64_t A);

} // namespace warrow

#endif // WARROW_SUPPORT_SATURATING_H
