//===- support/timer.h - Wall-clock timing ----------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock stopwatch used by the experiment drivers (Table 1 timings).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SUPPORT_TIMER_H
#define WARROW_SUPPORT_TIMER_H

#include <chrono>

namespace warrow {

/// Steady-clock stopwatch. Starts running on construction.
class Timer {
public:
  Timer() : Start(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = std::chrono::steady_clock::now(); }

  /// Elapsed seconds since construction/reset.
  double seconds() const;

  /// Elapsed milliseconds since construction/reset.
  double millis() const { return seconds() * 1e3; }

private:
  std::chrono::steady_clock::time_point Start;
};

} // namespace warrow

#endif // WARROW_SUPPORT_TIMER_H
