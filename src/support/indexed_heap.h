//===- support/indexed_heap.h - Indexed binary heap -------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A binary min-heap over dense `uint32_t` ids with a membership bitmap:
/// the priority-queue shape all structured solvers share. `push` is a
/// set-insert (an id already present is left untouched — the `add Q x`
/// of Figures 4 and 6), `pop` removes the minimum element under the
/// comparator. Compared to the previous `std::set` / `std::priority_queue`
/// + guard-vector combinations this keeps all state in three flat arrays
/// (no node allocations, no rebalancing), which is the difference between
/// cache misses and cache hits on the solvers' hottest loop.
///
/// The comparator orders *ids*: the default `std::less` pops the
/// smallest id first (SW's fixed variable ordering); SLR instantiates
/// `std::greater` because its keys are the negated discovery slots, so
/// the minimum key is the maximum slot.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SUPPORT_INDEXED_HEAP_H
#define WARROW_SUPPORT_INDEXED_HEAP_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

namespace warrow {

/// Min-heap over ids `0 .. universe-1` with O(1) membership test and
/// set-like `push`. \p Compare orders ids; `pop` returns the least id.
template <typename Compare = std::less<uint32_t>> class IndexedHeap {
public:
  explicit IndexedHeap(Compare Cmp = Compare()) : Cmp(Cmp) {}

  /// Declares the id universe `0 .. N-1`; existing contents are kept.
  /// Heap storage is reserved so pushes never reallocate; growth is
  /// geometric because local solvers enlarge the universe one unknown at
  /// a time.
  void resizeUniverse(size_t N) {
    InHeap.resize(N, 0);
    if (Heap.capacity() < N)
      Heap.reserve(std::max(N, 2 * Heap.capacity()));
  }

  size_t universeSize() const { return InHeap.size(); }
  bool empty() const { return Heap.empty(); }
  size_t size() const { return Heap.size(); }
  bool contains(uint32_t Id) const { return InHeap[Id]; }

  /// The minimum element under the comparator. Heap must be non-empty.
  uint32_t top() const {
    assert(!Heap.empty());
    return Heap.front();
  }

  /// Set-insert: adds \p Id unless already present. Returns true if the
  /// heap changed.
  bool push(uint32_t Id) {
    assert(Id < InHeap.size() && "id outside declared universe");
    if (InHeap[Id])
      return false;
    InHeap[Id] = 1;
    Heap.push_back(Id);
    siftUp(Heap.size() - 1);
    return true;
  }

  /// Removes and returns the minimum element.
  uint32_t pop() {
    assert(!Heap.empty());
    uint32_t Min = Heap.front();
    InHeap[Min] = 0;
    uint32_t Last = Heap.back();
    Heap.pop_back();
    if (!Heap.empty()) {
      Heap.front() = Last;
      siftDown(0);
    }
    return Min;
  }

  /// Removes all elements; the universe (bitmap size) is kept.
  void clear() {
    for (uint32_t Id : Heap)
      InHeap[Id] = 0;
    Heap.clear();
  }

private:
  // `Cmp(a, b)` == "a has higher priority than b" (a popped first).
  bool before(uint32_t A, uint32_t B) const { return Cmp(A, B); }

  void siftUp(size_t I) {
    uint32_t Id = Heap[I];
    while (I > 0) {
      size_t Parent = (I - 1) / 2;
      if (!before(Id, Heap[Parent]))
        break;
      Heap[I] = Heap[Parent];
      I = Parent;
    }
    Heap[I] = Id;
  }

  void siftDown(size_t I) {
    uint32_t Id = Heap[I];
    size_t N = Heap.size();
    for (;;) {
      size_t Child = 2 * I + 1;
      if (Child >= N)
        break;
      if (Child + 1 < N && before(Heap[Child + 1], Heap[Child]))
        ++Child;
      if (!before(Heap[Child], Id))
        break;
      Heap[I] = Heap[Child];
      I = Child;
    }
    Heap[I] = Id;
  }

  Compare Cmp;
  std::vector<uint32_t> Heap;
  std::vector<uint8_t> InHeap;
};

} // namespace warrow

#endif // WARROW_SUPPORT_INDEXED_HEAP_H
