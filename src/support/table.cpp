//===- support/table.cpp - ASCII table rendering ---------------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/table.h"

#include <cassert>
#include <cstdio>

using namespace warrow;

Table::Table(std::vector<std::string> Headers) : Headers(std::move(Headers)) {}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row/header arity mismatch");
  Rows.push_back(std::move(Cells));
}

std::string Table::str() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t C = 0; C < Cells.size(); ++C) {
      if (C)
        Line += "  ";
      size_t Pad = Widths[C] - Cells[C].size();
      if (C == 0) { // Left-align the label column.
        Line += Cells[C];
        Line.append(Pad, ' ');
      } else {
        Line.append(Pad, ' ');
        Line += Cells[C];
      }
    }
    // Trim trailing spaces for tidy diffs.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line;
  };

  std::string Out = RenderRow(Headers);
  Out += '\n';
  size_t Total = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    Total += Widths[C] + (C ? 2 : 0);
  Out.append(Total, '-');
  Out += '\n';
  for (const auto &Row : Rows) {
    Out += RenderRow(Row);
    Out += '\n';
  }
  return Out;
}

std::string warrow::formatFixed(double Value, int Digits) {
  char Buf[64];
  snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string warrow::formatThousands(uint64_t Value) {
  std::string Raw = std::to_string(Value);
  std::string Out;
  for (size_t I = 0; I < Raw.size(); ++I) {
    if (I != 0 && (Raw.size() - I) % 3 == 0)
      Out += ' ';
    Out += Raw[I];
  }
  return Out;
}
