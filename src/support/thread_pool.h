//===- support/thread_pool.h - Fixed-size thread pool -----------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two fixed-size thread pools.
///
/// `ThreadPool` is deliberately simple: one shared FIFO task queue
/// behind a mutex, no work stealing. The SCC-parallel dense solver
/// schedules whole SCCs — coarse tasks whose cost dwarfs a queue lock —
/// so a stealing deque would buy nothing and cost determinism of the
/// bookkeeping. Tasks may submit further tasks (that is exactly how the
/// ready-count scheduler releases successor components); `waitIdle`
/// accounts for in-flight tasks, not just queued ones, so it only
/// returns once the transitive task graph has drained.
///
/// `WorkStealingPool` backs the parallel local strategy, whose
/// component tasks vary wildly in cost: each worker owns a deque
/// (LIFO for the owner, to keep the freshly destabilized component
/// hot in cache) and steals FIFO from victims when its own queue
/// drains. Every deque is guarded by its own mutex — tasks here are
/// still whole components, so a lock per push/pop is noise and keeps
/// the pool trivially TSan-clean. The pool also exposes a stable
/// `workerIndex()` so strategies can keep per-worker stats shards
/// without atomics on the hot path.
///
/// A pool constructed with 0 threads degenerates to inline execution
/// on the caller's thread — the zero-overhead configuration used for
/// single-threaded runs and for deterministic debugging.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SUPPORT_THREAD_POOL_H
#define WARROW_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace warrow {

/// Fixed-size FIFO thread pool; see file comment.
class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 means "run tasks inline in submit".
  explicit ThreadPool(unsigned Threads) {
    Workers.reserve(Threads);
    for (unsigned I = 0; I < Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Stopping = true;
    }
    WakeWorkers.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p Task. With no workers the task (and anything it
  /// transitively submits) runs before submit returns.
  void submit(std::function<void()> Task) {
    if (Workers.empty()) {
      Task();
      return;
    }
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Queue.push_back(std::move(Task));
      ++Pending;
    }
    WakeWorkers.notify_one();
  }

  /// Blocks until every submitted task — including tasks submitted *by*
  /// tasks — has finished.
  void waitIdle() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Idle.wait(Lock, [this] { return Pending == 0; });
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WakeWorkers.wait(Lock, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping and drained.
        Task = std::move(Queue.front());
        Queue.pop_front();
      }
      Task();
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        if (--Pending == 0)
          Idle.notify_all();
      }
    }
  }

  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Workers;
  size_t Pending = 0; // Queued + running tasks.
  bool Stopping = false;
};

/// Work-stealing pool; see file comment. Tasks may submit further
/// tasks; a task submitted from inside a worker lands on that worker's
/// own deque (LIFO), tasks submitted from outside land on a shared
/// injector queue that workers drain before stealing from each other.
class WorkStealingPool {
public:
  /// Spawns \p Threads workers; 0 means "run tasks inline in submit".
  explicit WorkStealingPool(unsigned Threads) : Locals(Threads) {
    Workers.reserve(Threads);
    for (unsigned I = 0; I < Threads; ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  WorkStealingPool(const WorkStealingPool &) = delete;
  WorkStealingPool &operator=(const WorkStealingPool &) = delete;

  ~WorkStealingPool() {
    {
      std::unique_lock<std::mutex> Lock(SyncMutex);
      Stopping = true;
    }
    WakeWorkers.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Number of distinct values `workerIndex()` can return: one shard
  /// per worker plus one for external callers (which is also the only
  /// shard of an inline, zero-thread pool).
  unsigned shardCount() const { return threadCount() + 1; }

  /// Stable shard index of the calling thread: workers get [0,
  /// threadCount()), any other thread (including the caller of an
  /// inline pool) gets threadCount(). Strategies key per-worker stats
  /// shards off this so the hot path never touches an atomic.
  unsigned workerIndex() const {
    return CurrentPool == this ? CurrentWorker : threadCount();
  }

  /// Enqueues \p Task. With no workers the task (and anything it
  /// transitively submits) runs before submit returns.
  void submit(std::function<void()> Task) {
    if (Workers.empty()) {
      Task();
      return;
    }
    // Count the task before publishing it: a worker may steal and
    // finish it the instant it hits a queue, and its --Pending must
    // never observe the increment still outstanding (waitIdle would
    // return early or Pending would underflow).
    if (CurrentPool == this) {
      {
        std::unique_lock<std::mutex> Lock(SyncMutex);
        ++Pending;
      }
      std::unique_lock<std::mutex> Lock(Locals[CurrentWorker].Mutex);
      Locals[CurrentWorker].Deque.push_front(std::move(Task));
    } else {
      std::unique_lock<std::mutex> Lock(SyncMutex);
      ++Pending;
      Injector.push_back(std::move(Task));
    }
    WakeWorkers.notify_one();
  }

  /// Blocks until every submitted task — including tasks submitted *by*
  /// tasks — has finished.
  void waitIdle() {
    std::unique_lock<std::mutex> Lock(SyncMutex);
    Idle.wait(Lock, [this] { return Pending == 0; });
  }

private:
  struct LocalQueue {
    std::mutex Mutex;
    std::deque<std::function<void()>> Deque;
  };

  /// Own deque front, then injector, then steal the oldest task from
  /// the first non-empty victim. Returns an empty function when every
  /// queue is dry.
  std::function<void()> tryPop(unsigned Self) {
    {
      std::unique_lock<std::mutex> Lock(Locals[Self].Mutex);
      if (!Locals[Self].Deque.empty()) {
        auto Task = std::move(Locals[Self].Deque.front());
        Locals[Self].Deque.pop_front();
        return Task;
      }
    }
    {
      std::unique_lock<std::mutex> Lock(SyncMutex);
      if (!Injector.empty()) {
        auto Task = std::move(Injector.front());
        Injector.pop_front();
        return Task;
      }
    }
    for (size_t Off = 1; Off < Locals.size(); ++Off) {
      unsigned Victim = (Self + Off) % static_cast<unsigned>(Locals.size());
      std::unique_lock<std::mutex> Lock(Locals[Victim].Mutex);
      if (!Locals[Victim].Deque.empty()) {
        auto Task = std::move(Locals[Victim].Deque.back());
        Locals[Victim].Deque.pop_back();
        return Task;
      }
    }
    return {};
  }

  bool anyQueued() {
    if (!Injector.empty())
      return true;
    for (LocalQueue &Q : Locals) {
      std::unique_lock<std::mutex> Lock(Q.Mutex);
      if (!Q.Deque.empty())
        return true;
    }
    return false;
  }

  void workerLoop(unsigned Self) {
    CurrentPool = this;
    CurrentWorker = Self;
    for (;;) {
      std::function<void()> Task = tryPop(Self);
      if (!Task) {
        std::unique_lock<std::mutex> Lock(SyncMutex);
        WakeWorkers.wait(Lock, [this] { return Stopping || anyQueued(); });
        if (Stopping && !anyQueued())
          return;
        continue;
      }
      Task();
      {
        std::unique_lock<std::mutex> Lock(SyncMutex);
        if (--Pending == 0)
          Idle.notify_all();
      }
      // A task that submitted work onto its own deque never notified
      // anyone awake enough to steal it; poke one sleeper.
      WakeWorkers.notify_one();
    }
  }

  // Lock order: SyncMutex may be taken with a LocalQueue mutex held
  // only in anyQueued (SyncMutex first); no path takes SyncMutex while
  // holding a queue mutex.
  std::mutex SyncMutex;
  std::condition_variable WakeWorkers;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Injector;
  std::vector<LocalQueue> Locals;
  std::vector<std::thread> Workers;
  size_t Pending = 0; // Queued + running tasks.
  bool Stopping = false;

  inline static thread_local const WorkStealingPool *CurrentPool = nullptr;
  inline static thread_local unsigned CurrentWorker = 0;
};

} // namespace warrow

#endif // WARROW_SUPPORT_THREAD_POOL_H
