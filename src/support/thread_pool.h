//===- support/thread_pool.h - Fixed-size thread pool -----------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately simple fixed-size thread pool: one shared FIFO task
/// queue behind a mutex, no work stealing. The parallel solver schedules
/// whole SCCs — coarse tasks whose cost dwarfs a queue lock — so a
/// stealing deque would buy nothing and cost determinism of the
/// bookkeeping. Tasks may submit further tasks (that is exactly how the
/// ready-count scheduler releases successor components); `waitIdle`
/// accounts for in-flight tasks, not just queued ones, so it only
/// returns once the transitive task graph has drained.
///
/// `ThreadPool(0)` degenerates to inline execution on the caller's
/// thread — the zero-overhead configuration used for single-threaded
/// runs and for deterministic debugging.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SUPPORT_THREAD_POOL_H
#define WARROW_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace warrow {

/// Fixed-size FIFO thread pool; see file comment.
class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 means "run tasks inline in submit".
  explicit ThreadPool(unsigned Threads) {
    Workers.reserve(Threads);
    for (unsigned I = 0; I < Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Stopping = true;
    }
    WakeWorkers.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p Task. With no workers the task (and anything it
  /// transitively submits) runs before submit returns.
  void submit(std::function<void()> Task) {
    if (Workers.empty()) {
      Task();
      return;
    }
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Queue.push_back(std::move(Task));
      ++Pending;
    }
    WakeWorkers.notify_one();
  }

  /// Blocks until every submitted task — including tasks submitted *by*
  /// tasks — has finished.
  void waitIdle() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Idle.wait(Lock, [this] { return Pending == 0; });
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WakeWorkers.wait(Lock, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping and drained.
        Task = std::move(Queue.front());
        Queue.pop_front();
      }
      Task();
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        if (--Pending == 0)
          Idle.notify_all();
      }
    }
  }

  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Workers;
  size_t Pending = 0; // Queued + running tasks.
  bool Stopping = false;
};

} // namespace warrow

#endif // WARROW_SUPPORT_THREAD_POOL_H
