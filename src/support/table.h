//===- support/table.h - ASCII table rendering ------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned ASCII table rendering for the benchmark drivers that
/// regenerate the paper's Table 1 and Figure 7.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SUPPORT_TABLE_H
#define WARROW_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace warrow {

/// Collects rows of strings and renders them with aligned columns.
class Table {
public:
  /// \p Headers defines the column count; every row must match it.
  explicit Table(std::vector<std::string> Headers);

  /// Appends a data row. Must have exactly as many cells as there are
  /// headers.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table: header, separator line, then rows. The first column
  /// is left-aligned, all other columns right-aligned (numeric convention).
  std::string str() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats \p Value with \p Digits decimal places (no locale surprises).
std::string formatFixed(double Value, int Digits);

/// Formats a count with thousands separators ("97 785" style, as the paper
/// prints unknown counts).
std::string formatThousands(uint64_t Value);

} // namespace warrow

#endif // WARROW_SUPPORT_TABLE_H
