//===- support/interner.h - String interning --------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A string interner mapping identifier spellings to dense `Symbol` ids.
/// The front-end and the analysis refer to variables and functions by
/// `Symbol` so that environments can be arrays/maps keyed by small ints.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SUPPORT_INTERNER_H
#define WARROW_SUPPORT_INTERNER_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace warrow {

/// Dense id of an interned string. Value 0 is reserved for the empty string.
using Symbol = uint32_t;

/// Interns strings and hands out dense `Symbol` ids.
///
/// Symbols are only meaningful relative to the interner that produced them;
/// each parsed `Program` owns one interner.
class Interner {
public:
  Interner();

  /// Interns \p Text, returning its (possibly pre-existing) symbol.
  Symbol intern(std::string_view Text);

  /// Returns the spelling of \p Sym. The reference is stable: spellings are
  /// never deallocated while the interner lives.
  const std::string &spelling(Symbol Sym) const;

  /// Returns the symbol of \p Text if already interned, or 0 otherwise
  /// (note 0 is also the id of the empty string).
  Symbol lookup(std::string_view Text) const;

  /// Number of distinct symbols handed out (including the empty string).
  size_t size() const { return Spellings.size(); }

private:
  // Deque: growing never moves existing strings, so string_view keys into
  // them (including short SSO strings) stay valid.
  std::deque<std::string> Spellings;
  std::unordered_map<std::string_view, Symbol> Ids;
};

} // namespace warrow

#endif // WARROW_SUPPORT_INTERNER_H
