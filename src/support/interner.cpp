//===- support/interner.cpp - String interning ----------------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/interner.h"

#include <cassert>

using namespace warrow;

Interner::Interner() {
  // Reserve symbol 0 for the empty string so that 0 can double as "none".
  Spellings.emplace_back();
  Ids.emplace(std::string_view(Spellings.back()), 0);
}

Symbol Interner::intern(std::string_view Text) {
  auto It = Ids.find(Text);
  if (It != Ids.end())
    return It->second;
  Symbol Sym = static_cast<Symbol>(Spellings.size());
  Spellings.emplace_back(Text);
  // Key the map by a view into our own stable storage, not the argument.
  Ids.emplace(std::string_view(Spellings.back()), Sym);
  return Sym;
}

const std::string &Interner::spelling(Symbol Sym) const {
  assert(Sym < Spellings.size() && "symbol from a different interner?");
  return Spellings[Sym];
}

Symbol Interner::lookup(std::string_view Text) const {
  auto It = Ids.find(Text);
  return It == Ids.end() ? 0 : It->second;
}
