//===- support/casting.h - LLVM-style isa/cast/dyn_cast helpers ----------===//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of the LLVM-style custom RTTI templates
/// (`isa<>`, `cast<>`, `dyn_cast<>`) used by the AST class hierarchy.
/// A class opts in by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SUPPORT_CASTING_H
#define WARROW_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace warrow {

/// Returns true if \p Val is an instance of \p To (or a subclass thereof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Variadic form: true if \p Val is an instance of any of the listed types.
template <typename To, typename To2, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<To2, Rest...>(Val);
}

/// Checked downcast; asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<> but tolerates a null argument (propagating it).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace warrow

#endif // WARROW_SUPPORT_CASTING_H
