//===- support/hash.h - Hash combining utilities ----------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combining helpers for user-defined unknown (variable) types
/// used as keys of the local solvers' hash maps.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SUPPORT_HASH_H
#define WARROW_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace warrow {

/// Mixes \p Value into \p Seed (boost::hash_combine-style, 64-bit constants).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes all arguments into one seed.
template <typename... Ts> size_t hashAll(const Ts &...Vals) {
  size_t Seed = 0;
  (hashCombine(Seed, std::hash<Ts>{}(Vals)), ...);
  return Seed;
}

} // namespace warrow

#endif // WARROW_SUPPORT_HASH_H
