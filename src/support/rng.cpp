//===- support/rng.cpp - Deterministic random numbers ---------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/rng.h"

#include <cassert>

using namespace warrow;

uint64_t Rng::next() {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t Rng::below(uint64_t Limit) {
  assert(Limit > 0 && "below(0) has no valid result");
  // Rejection sampling to avoid modulo bias; the loop almost never spins.
  uint64_t Threshold = -Limit % Limit;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Limit;
  }
}

int64_t Rng::range(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  return static_cast<int64_t>(static_cast<uint64_t>(Lo) + below(Span));
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den > 0 && "zero denominator");
  return below(Den) < Num;
}
