//===- support/rng.h - Deterministic random numbers -------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64) used by property tests and the
/// synthetic workload generators. Determinism matters: benchmark tables and
/// tests must reproduce bit-identically across runs and platforms, which
/// rules out `std::mt19937` + distribution objects (implementation-defined).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_SUPPORT_RNG_H
#define WARROW_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace warrow {

/// SplitMix64 generator: tiny, fast, and statistically fine for workload
/// shaping (not for cryptography).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform value in [0, Limit). \p Limit must be positive.
  uint64_t below(uint64_t Limit);

  /// Uniform value in [Lo, Hi] (inclusive). Requires Lo <= Hi.
  int64_t range(int64_t Lo, int64_t Hi);

  /// Bernoulli draw: true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den);

  /// Picks a uniformly random element of \p Items (must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &Items) {
    return Items[below(Items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[below(I)]);
  }

private:
  uint64_t State;
};

} // namespace warrow

#endif // WARROW_SUPPORT_RNG_H
