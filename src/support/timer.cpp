//===- support/timer.cpp - Wall-clock timing ------------------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/timer.h"

using namespace warrow;

double Timer::seconds() const {
  auto Now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(Now - Start).count();
}
