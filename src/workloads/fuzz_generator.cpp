//===- workloads/fuzz_generator.cpp - Random program fuzzing --------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/fuzz_generator.h"

#include "support/rng.h"

#include <string>
#include <vector>

using namespace warrow;

namespace {

/// Generation context for one function body.
struct FuzzContext {
  Rng &R;
  const FuzzOptions &Options;
  std::string Out;
  unsigned Indent = 1;
  unsigned NextLocal = 0;
  unsigned NextLoop = 0;
  unsigned LoopsOnPath = 0; ///< Bounds nesting of loops (termination cost).
  unsigned CallsEmitted = 0; ///< Bounds the call-tree fan-out.
  bool InLoop = false;
  std::vector<std::string> Scalars; ///< In-scope scalar names.
  std::vector<std::string> Arrays;  ///< In-scope array names (all size 8).
  std::vector<std::string> Globals;
  std::vector<std::pair<std::string, unsigned>> Callees; ///< (name, arity).

  FuzzContext(Rng &R, const FuzzOptions &Options) : R(R), Options(Options) {}

  void line(const std::string &Text) {
    Out.append(2 * Indent, ' ');
    Out += Text;
    Out += '\n';
  }
};

/// A random arithmetic expression. \p AllowUnknown is false inside
/// conditions (sema forbids it there) and array indices are wrapped into
/// range by construction.
std::string genExpr(FuzzContext &C, unsigned Depth, bool AllowUnknown);

std::string genLeaf(FuzzContext &C, bool AllowUnknown) {
  switch (C.R.below(4)) {
  case 0:
    return std::to_string(C.R.range(-20, 20));
  case 1:
    if (!C.Scalars.empty())
      return C.R.pick(C.Scalars);
    return std::to_string(C.R.range(0, 9));
  case 2:
    if (!C.Globals.empty())
      return C.R.pick(C.Globals);
    return std::to_string(C.R.range(0, 9));
  default:
    if (AllowUnknown && C.R.chance(1, 2))
      return "unknown()";
    return std::to_string(C.R.range(-5, 5));
  }
}

std::string genExpr(FuzzContext &C, unsigned Depth, bool AllowUnknown) {
  if (Depth == 0 || C.R.chance(1, 3))
    return genLeaf(C, AllowUnknown);
  switch (C.R.below(6)) {
  case 0:
    return "(" + genExpr(C, Depth - 1, AllowUnknown) + " + " +
           genExpr(C, Depth - 1, AllowUnknown) + ")";
  case 1:
    return "(" + genExpr(C, Depth - 1, AllowUnknown) + " - " +
           genExpr(C, Depth - 1, AllowUnknown) + ")";
  case 2:
    return "(" + genExpr(C, Depth - 1, AllowUnknown) + " * " +
           std::to_string(C.R.range(-4, 4)) + ")";
  case 3:
    // Strictly positive divisor: (e % 7 + 8) is within [2, 15].
    return "(" + genExpr(C, Depth - 1, AllowUnknown) + " / (" +
           genExpr(C, Depth - 1, AllowUnknown) + " % 7 + 8))";
  case 4:
    return "(" + genExpr(C, Depth - 1, AllowUnknown) + " % (" +
           genExpr(C, Depth - 1, AllowUnknown) + " % 5 + 6))";
  default:
    if (!C.Arrays.empty() && C.Options.UseArrays) {
      // In-range index: ((e % 8) + 8) % 8 is within [0, 7].
      return C.R.pick(C.Arrays) + "[((" + genExpr(C, Depth - 1, AllowUnknown) +
             " % 8) + 8) % 8]";
    }
    return "(-" + genExpr(C, Depth - 1, AllowUnknown) + ")";
  }
}

/// A random condition (no unknown() — guard edges may re-evaluate it).
std::string genCond(FuzzContext &C, unsigned Depth) {
  if (Depth > 0 && C.R.chance(1, 4)) {
    switch (C.R.below(3)) {
    case 0:
      return "(" + genCond(C, Depth - 1) + " && " + genCond(C, Depth - 1) +
             ")";
    case 1:
      return "(" + genCond(C, Depth - 1) + " || " + genCond(C, Depth - 1) +
             ")";
    default:
      return "!" + genCond(C, Depth - 1);
    }
  }
  static const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
  return "(" + genExpr(C, 1, /*AllowUnknown=*/false) + " " +
         Ops[C.R.below(6)] + " " + genExpr(C, 1, /*AllowUnknown=*/false) +
         ")";
}

void genBlock(FuzzContext &C, unsigned Depth);

void genStmt(FuzzContext &C, unsigned Depth) {
  unsigned Kind = static_cast<unsigned>(C.R.below(10));
  switch (Kind) {
  case 0: { // Fresh local.
    std::string Name = "v" + std::to_string(C.NextLocal++);
    C.line("int " + Name + " = " + genExpr(C, 2, true) + ";");
    C.Scalars.push_back(Name);
    return;
  }
  case 1: // Assignment to an existing scalar.
    if (!C.Scalars.empty()) {
      C.line(C.R.pick(C.Scalars) + " = " + genExpr(C, 2, true) + ";");
      return;
    }
    [[fallthrough]];
  case 2: // Global write.
    if (!C.Globals.empty()) {
      C.line(C.R.pick(C.Globals) + " = " + genExpr(C, 2, true) + ";");
      return;
    }
    [[fallthrough]];
  case 3: // Array store.
    if (!C.Arrays.empty()) {
      C.line(C.R.pick(C.Arrays) + "[((" + genExpr(C, 1, false) +
             " % 8) + 8) % 8] = " + genExpr(C, 2, true) + ";");
      return;
    }
    [[fallthrough]];
  case 4: // Branch.
    if (Depth > 0) {
      C.line("if (" + genCond(C, 1) + ") {");
      ++C.Indent;
      genBlock(C, Depth - 1);
      --C.Indent;
      if (C.R.chance(1, 2)) {
        C.line("} else {");
        ++C.Indent;
        genBlock(C, Depth - 1);
        --C.Indent;
      }
      C.line("}");
      return;
    }
    [[fallthrough]];
  case 5: // Counted loop (for-loop: continue still reaches the step).
    if (Depth > 0 && C.LoopsOnPath < 2) {
      std::string IV = "li" + std::to_string(C.NextLoop++);
      int64_t Bound =
          1 + static_cast<int64_t>(C.R.below(C.Options.MaxLoopBound));
      C.line("for (int " + IV + " = 0; " + IV + " < " +
             std::to_string(Bound) + "; " + IV + " = " + IV + " + 1) {");
      ++C.Indent;
      ++C.LoopsOnPath;
      bool WasInLoop = C.InLoop;
      C.InLoop = true;
      C.Scalars.push_back(IV);
      genBlock(C, Depth - 1);
      C.InLoop = WasInLoop;
      --C.LoopsOnPath;
      --C.Indent;
      C.line("}");
      return;
    }
    [[fallthrough]];
  case 6: // Call — outside loops and bounded, so the concrete call tree
          // stays polynomial.
    if (!C.Callees.empty() && C.Options.UseCalls && C.LoopsOnPath == 0 &&
        C.CallsEmitted < 3) {
      ++C.CallsEmitted;
      const auto &[Callee, Arity] = C.R.pick(C.Callees);
      std::string Args;
      for (unsigned I = 0; I < Arity; ++I) {
        if (I)
          Args += ", ";
        Args += genExpr(C, 1, true);
      }
      if (C.R.chance(2, 3)) {
        std::string Name = "v" + std::to_string(C.NextLocal++);
        C.line("int " + Name + " = " + Callee + "(" + Args + ");");
        C.Scalars.push_back(Name);
      } else {
        C.line(Callee + "(" + Args + ");");
      }
      return;
    }
    [[fallthrough]];
  case 7: // break / continue.
    if (C.InLoop && C.R.chance(1, 3)) {
      C.line(C.R.chance(1, 2) ? "break;" : "continue;");
      return;
    }
    [[fallthrough]];
  default: // Plain recomputation.
    if (!C.Scalars.empty())
      C.line(C.R.pick(C.Scalars) + " = " + genExpr(C, 2, true) + ";");
    else
      C.line(";");
    return;
  }
}

void genBlock(FuzzContext &C, unsigned Depth) {
  size_t ScalarMark = C.Scalars.size();
  unsigned Stmts =
      1 + static_cast<unsigned>(C.R.below(C.Options.MaxStmtsPerBlock));
  for (unsigned I = 0; I < Stmts; ++I)
    genStmt(C, Depth);
  // Locals remain declared (flat function scope) but fall out of the
  // use-set to avoid sibling-scope duplicates... which cannot happen as
  // names are globally unique; keeping them usable is fine.
  (void)ScalarMark;
}

} // namespace

std::string warrow::generateFuzzProgram(uint64_t Seed,
                                        const FuzzOptions &Options) {
  Rng R(Seed);
  std::string Out;
  Out += "// Fuzzed program, seed " + std::to_string(Seed) + ".\n";

  std::vector<std::string> Globals;
  if (Options.UseGlobals) {
    unsigned NumGlobals = 1 + static_cast<unsigned>(R.below(3));
    for (unsigned G = 0; G < NumGlobals; ++G) {
      Globals.push_back("fg" + std::to_string(G));
      Out += "int fg" + std::to_string(G) + " = " +
             std::to_string(R.range(-5, 5)) + ";\n";
    }
    if (Options.UseArrays)
      Out += "int fgarr[8];\n";
  }

  unsigned NumFunctions =
      Options.MaxFunctions == 0
          ? 0
          : static_cast<unsigned>(R.below(Options.MaxFunctions + 1));
  std::vector<std::pair<std::string, unsigned>> Defined;

  for (unsigned F = 0; F < NumFunctions; ++F) {
    std::string Name = "fz" + std::to_string(F);
    unsigned Arity = 1 + static_cast<unsigned>(R.below(2));
    FuzzContext C(R, Options);
    C.Globals = Globals;
    // Later functions may call earlier ones only: acyclic, terminating.
    C.Callees = Defined;
    std::string Header = "int " + Name + "(";
    for (unsigned A = 0; A < Arity; ++A) {
      if (A)
        Header += ", ";
      std::string Param = "p" + std::to_string(A);
      Header += "int " + Param;
      C.Scalars.push_back(Param);
    }
    Header += ") {";
    if (Options.UseArrays && R.chance(1, 2)) {
      C.Arrays.push_back("a0");
      C.line("int a0[8];");
    }
    if (Options.UseArrays && Options.UseGlobals)
      C.Arrays.push_back("fgarr");
    genBlock(C, Options.MaxDepth);
    C.line("return " + genExpr(C, 2, true) + ";");
    Out += Header + "\n" + C.Out + "}\n\n";
    Defined.push_back({Name, Arity});
  }

  // main.
  {
    FuzzContext C(R, Options);
    C.Globals = Globals;
    C.Callees = Defined;
    if (Options.UseArrays) {
      C.Arrays.push_back("m0");
      C.line("int m0[8];");
      if (Options.UseGlobals)
        C.Arrays.push_back("fgarr");
    }
    genBlock(C, Options.MaxDepth);
    C.line("return " + genExpr(C, 2, true) + ";");
    Out += "int main() {\n" + C.Out + "}\n";
  }
  return Out;
}
