//===- workloads/eq_generators.h - Synthetic equation systems ---*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canned and synthetic equation systems:
///  - the paper's Example 1 (RR diverges under ⊟) and Example 2
///    (LIFO worklist diverges under ⊟), over ℕ∪{∞};
///  - the paper's Example 5 (infinite system for local solving);
///  - parameterized monotone systems (chains, cycles, random sparse
///    systems) used by the solver complexity benches (Theorems 1-2) and
///    the cross-checking property tests.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_WORKLOADS_EQ_GENERATORS_H
#define WARROW_WORKLOADS_EQ_GENERATORS_H

#include "eqsys/dense_system.h"
#include "eqsys/local_system.h"
#include "lattice/interval.h"
#include "lattice/natinf.h"

#include <cstdint>

namespace warrow {

/// Paper Example 1:  x1 = x2;  x2 = x3 + 1;  x3 = x1  over ℕ∪{∞}.
/// Monotone, but plain round-robin with ⊟ diverges on it.
DenseSystem<NatInf> paperExampleOne();

/// Paper Example 2:  x1 = (x1+1) ⊓ (x2+1);  x2 = (x2+1) ⊓ (x1+1).
/// Monotone, but LIFO worklist iteration with ⊟ diverges on it.
DenseSystem<NatInf> paperExampleTwo();

/// Paper Example 5 (infinite system over max-lattice ℕ∪{∞}):
///    y_{2n}   = max(y_{y_{2n}}, n)
///    y_{2n+1} = y_{6n+4}
/// Local solving for y1 terminates with dom {y0, y1, y2, y4}.
LocalSystem<uint64_t, NatInf> paperExampleFive();

/// A chain x_0 = [0,0], x_i = (x_{i-1} + [1,1]) ⊓ [0, Bound] over
/// intervals — models a counted loop of length `Bound` unrolled across
/// `Length` program points. Monotone; finite height ~ Bound.
DenseSystem<Interval> chainSystem(unsigned Length, int64_t Bound);

/// A ring of `Length` unknowns x_i = (x_{i-1} + [0,1]) ⊓ [0,Bound] with a
/// seed x_0 ⊒ [0,0] — a loop-shaped system requiring widening.
DenseSystem<Interval> ringSystem(unsigned Length, int64_t Bound);

/// A random sparse monotone interval system: each unknown joins `Degree`
/// randomly chosen others (plus increments), all meet-bounded by
/// [0, Bound]. Deterministic in `Seed`.
DenseSystem<Interval> randomMonotoneSystem(unsigned Size, unsigned Degree,
                                           int64_t Bound, uint64_t Seed);

/// A monotone interval system shaped like `NumComps` loops (rings of
/// `CompSize` unknowns, each a nontrivial SCC) linked by `CrossLinks`
/// forward edges per component from earlier components — a condensation
/// DAG with many independent components, the workload shape the parallel
/// SCC-scheduled solver exploits. `CrossLinks = 0` gives fully
/// independent components (embarrassingly parallel). Deterministic in
/// `Seed`.
DenseSystem<Interval> manyComponentSystem(unsigned NumComps,
                                          unsigned CompSize, int64_t Bound,
                                          unsigned CrossLinks, uint64_t Seed);

/// A random sparse *non-monotone* interval system. The monotone core of
/// `randomMonotoneSystem` (join of capped increments) is kept, but a
/// random subset of the dependencies is perturbed:
///  - *negated* dependencies contribute a large constant interval while
///    the dependency is small and a strictly smaller one once it grows
///    past a threshold (anti-monotone in the dependency);
///  - *reset* dependencies collapse their contribution back to [0,0]
///    once the dependency exceeds a threshold.
/// All right-hand sides stay within [⊥, [0,Bound]], so runs with a
/// degrading ⊟ terminate; plain ⊟ may oscillate forever (use a budget).
/// Deterministic in `Seed`.
DenseSystem<Interval> randomNonMonotoneSystem(unsigned Size, unsigned Degree,
                                              int64_t Bound, uint64_t Seed);

/// A *non-monotone* two-unknown system that oscillates forever under ⊟
/// with plain narrowing, used to demonstrate the degrading operator ⊟ₖ:
///    x = if y <= [0,K] then [0,10] else [0,0]
///    y = x + [1,1]
DenseSystem<Interval> oscillatingSystem(int64_t K);

/// The stress-tier system (bench_stress): a storage-free *implicit*
/// side-effecting system whose right-hand sides are computed from the
/// unknown id alone, so generating a 10⁶-10⁷-unknown instance costs no
/// memory up front — all allocation is the solver's own per-unknown
/// state, which is exactly what the stress tier measures.
///
/// Shape (deterministic in `Seed`):
///  - `NumRings` rings of `RingSize` unknowns, each a widening/narrowing
///    SCC: x_{r,p} = (x_{r,p-1} + [0,1]) ⊓ [0,Bound], the head closing
///    the cycle from the tail and seeding [0,0];
///  - each ring head additionally joins `CrossLinks` hash-chosen earlier
///    ring heads (a random condensation DAG — parallel slack with real
///    cross-component edges) and *side-effects* its value into one of 64
///    accumulator unknowns, exercising the side-effect machinery (and
///    the parallel engine's sharded accumulators) at scale;
///  - a 64-ary layer of aggregator unknowns joins the ring heads, and a
///    single root joins the aggregators plus the accumulators, so local
///    solving from `Root` reaches every unknown without any right-hand
///    side fanning in more than ~64 dependencies.
struct StressSystem {
  SideEffectingSystem<uint64_t, Interval> System;
  /// Unknown to solve for (reaches everything).
  uint64_t Root = 0;
  /// Total unknowns reachable from Root (ring nodes + aggregators +
  /// accumulators + the root itself) — the expected |dom σ|.
  uint64_t NumUnknowns = 0;
};
StressSystem stressSideSystem(uint64_t NumRings, unsigned RingSize,
                              int64_t Bound, unsigned CrossLinks,
                              uint64_t Seed);

} // namespace warrow

#endif // WARROW_WORKLOADS_EQ_GENERATORS_H
