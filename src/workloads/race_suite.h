//===- workloads/race_suite.h - Concurrent race benchmarks ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multithreaded mini-C benchmarks for the lockset race detector
/// (analysis/races.h), in the style of Goblint's concurrency regression
/// suite: spawned worker threads sharing globals under mutex discipline
/// (or deliberately without it). Each program carries a known answer —
/// the set of genuinely racy globals — so the benches can separate real
/// races from false alarms per solver.
///
/// Two programs (`narrow_guard`, `narrow_bound_read`) are built so the
/// only unprotected access sits in code reachable *only* under widened
/// loop bounds: the ⊟-iteration narrows the bound, refutes the guard and
/// replaces the stale access contribution, while the two-phase baseline's
/// frozen accumulators keep it — the race-flavored version of the paper's
/// Example 7 precision gap.
///
/// The programs live on disk under `tests/corpus/races/` with directive
/// headers (corpus/directives.h); this suite is a thin loader: the known
/// answer comes from each file's `EXPECT-RACES` line and the
/// `WarrowBeatsTwoPhase` flag is derived from its per-solver
/// `EXPECT-ALARMS` cells.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_WORKLOADS_RACE_SUITE_H
#define WARROW_WORKLOADS_RACE_SUITE_H

#include <cstdint>
#include <string>
#include <vector>

namespace warrow {

/// One concurrent benchmark program with its known answer.
struct RaceBenchmark {
  std::string Name;
  std::string Source;
  /// Globals that genuinely can race (every sound analysis must report
  /// at least these).
  std::vector<std::string> RacyGlobals;
  /// True when the ⊟-solver is expected to report *exactly* the known
  /// answer while the two-phase baseline reports strictly more (the
  /// frozen-accumulator precision gap).
  bool WarrowBeatsTwoPhase = false;
  /// Input tape for concrete (sequentialized) soundness runs.
  std::vector<int64_t> Inputs;
};

/// The full concurrent suite, in no particular order.
const std::vector<RaceBenchmark> &raceSuite();

/// Looks up a benchmark by name (null if absent).
const RaceBenchmark *findRaceBenchmark(const std::string &Name);

} // namespace warrow

#endif // WARROW_WORKLOADS_RACE_SUITE_H
