//===- workloads/bounds_suite.cpp - Bounds/assert benchmarks -------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/bounds_suite.h"

#include <sstream>

using namespace warrow;

namespace {

// --- loop_exact: narrowing recovers the exact loop bound ------------------
// Safe under every narrowing configuration. Plain widening still alarms:
// the body point itself is a ▽ point, so its value jumps past the
// guard-refined [0,9] during ascent and only a descending pass recovers
// it. Lists the full analysis solver set explicitly to seed the SOLVER
// directive format.
const char *LoopExactSource = R"(// EXPECT-ALARMS: * 0
// EXPECT-ALARMS: */widen 1
// SOLVER: warrow
// SOLVER: widen
// SOLVER: two-phase
// SOLVER: two-phase-localized
// SOLVER: parallel-warrow
int main() {
  int a[10];
  int i = 0;
  while (i < 10) {
    a[i] = i;
    i = i + 1;
  }
  return a[9];
}
)";

// --- off_by_one: a genuine bug every sound configuration must keep --------
// The `<=` guard lets i reach 10 inside the body.
const char *OffByOneSource = R"(// EXPECT-ALARMS: * 1
int main() {
  int a[10];
  int i = 0;
  while (i <= 10) {
    a[i] = 0;
    i = i + 1;
  }
  return 0;
}
)";

// --- global_bound_narrow: the Fig.-7 ⊟ vs two-phase gap (array form) ------
// During ascent the loop counter is widened to [0,+inf), so the guarded
// branch looks reachable and side-effects g with 11. The ⊟-iteration
// narrows i back to exactly 10, refutes the branch and *retracts* the
// stale contribution (g stays 0); the two-phase baseline's frozen globals
// keep g = [0,11] and the access alarms.
const char *GlobalBoundNarrowSource = R"(// EXPECT-ALARMS: */warrow 0
// EXPECT-ALARMS: */parallel-warrow 0
// EXPECT-ALARMS: */two-phase 1
// EXPECT-ALARMS: */two-phase-localized 1
// EXPECT-ALARMS: */widen 1
int g = 0;

int main() {
  int a[10];
  int i = 0;
  while (i < 10) {
    i = i + 1;
  }
  if (i > 10) {
    g = 11;
  }
  return a[g];
}
)";

// --- assert_global_narrow: the same gap, assert form ----------------------
const char *AssertGlobalNarrowSource = R"(// EXPECT-ALARMS: */warrow 0
// EXPECT-ALARMS: */parallel-warrow 0
// EXPECT-ALARMS: */two-phase 1
// EXPECT-ALARMS: */two-phase-localized 1
// EXPECT-ALARMS: */widen 1
int g = 0;

int main() {
  int i = 0;
  while (i < 10) {
    i = i + 1;
  }
  if (i > 10) {
    g = 11;
  }
  assert(g < 10);
  return g;
}
)";

// --- diff_invariant: the zones vs intervals gap (array form) --------------
// `j - i == 3` is stable through the loop, so DBM widening keeps it while
// both endpoints widen; intervals lose the relation (j has no upper
// guard) and alarm on a[j - i] under every solver.
const char *DiffInvariantSource = R"(// EXPECT-ALARMS: interval/* 1
// EXPECT-ALARMS: zones/* 0
int main() {
  int a[10];
  int i = 0;
  int j = i + 3;
  while (i < 100) {
    i = i + 1;
    j = j + 1;
  }
  return a[j - i];
}
)";

// --- diff_assert: the zones gap, assert form, unbounded iteration ---------
// The trip count is unknown, so no interval reasoning can bound j - i;
// the difference invariant alone proves the assert.
const char *DiffAssertSource = R"(// EXPECT-ALARMS: interval/* 1
// EXPECT-ALARMS: zones/* 0
int main() {
  int i = 0;
  int j = i + 3;
  int n = 0;
  n = unknown();
  int k = 0;
  while (k < n) {
    i = i + 1;
    j = j + 1;
    k = k + 1;
  }
  assert(j - i == 3);
  return j;
}
)";

// --- assert_refines: the assert itself alarms, but guards downstream ------
// x is arbitrary, so the assert may fail (one alarm in every
// configuration) — and exactly because asserts refine like positive
// guards, the array access after it is in bounds.
const char *AssertRefinesSource = R"(// EXPECT-ALARMS: * 1
int main() {
  int a[10];
  int x = 0;
  x = unknown();
  assert(x >= 0 && x < 10);
  a[x] = 1;
  return a[x];
}
)";

// --- call_chain: the ⊟ vs two-phase gap through a call boundary -----------
// The increment runs through a callee, and call parameter passing is a
// *side effect* onto the callee entry — which the two-phase baseline
// freezes at its widened ascent value ([0,+inf)), so the callee's return
// never narrows and both accesses alarm. The ⊟-iteration re-narrows
// through the call and proves i == 9 at the exit; plain widening alarms
// for the usual reason.
const char *CallChainSource = R"(// EXPECT-ALARMS: */warrow 0
// EXPECT-ALARMS: */parallel-warrow 0
// EXPECT-ALARMS: */two-phase 2
// EXPECT-ALARMS: */two-phase-localized 2
// EXPECT-ALARMS: */widen 2
int inc(int x) {
  return x + 1;
}

int main() {
  int a[10];
  int i = 0;
  while (i < 9) {
    i = inc(i);
  }
  a[i] = 1;
  return a[i];
}
)";

} // namespace

const std::vector<BoundsBenchmark> &warrow::boundsSuite() {
  static const std::vector<BoundsBenchmark> Suite = {
      {"loop_exact", LoopExactSource},
      {"off_by_one", OffByOneSource},
      {"global_bound_narrow", GlobalBoundNarrowSource},
      {"assert_global_narrow", AssertGlobalNarrowSource},
      {"diff_invariant", DiffInvariantSource},
      {"diff_assert", DiffAssertSource},
      {"assert_refines", AssertRefinesSource},
      {"call_chain", CallChainSource},
  };
  return Suite;
}

const BoundsBenchmark *warrow::findBoundsBenchmark(const std::string &Name) {
  for (const BoundsBenchmark &B : boundsSuite())
    if (B.Name == Name)
      return &B;
  return nullptr;
}

namespace {

/// Splits a directive key ("zones/warrow", "interval/*", "*") into its
/// domain and solver parts; a missing slash means both sides wildcard.
std::pair<std::string, std::string> splitKey(const std::string &Key) {
  size_t Slash = Key.find('/');
  if (Slash == std::string::npos)
    return {"*", "*"};
  return {Key.substr(0, Slash), Key.substr(Slash + 1)};
}

} // namespace

std::optional<uint64_t>
BoundsDirectives::expectedFor(std::string_view Domain,
                              std::string_view Solver) const {
  std::optional<uint64_t> Best;
  int BestScore = -1;
  for (const auto &[Key, Count] : ExpectedAlarms) {
    auto [Dom, Sol] = splitKey(Key);
    if (Dom != "*" && Dom != Domain)
      continue;
    if (Sol != "*" && Sol != Solver)
      continue;
    int Score = (Dom != "*" ? 2 : 0) + (Sol != "*" ? 1 : 0);
    if (Score > BestScore) {
      BestScore = Score;
      Best = Count;
    }
  }
  return Best;
}

BoundsDirectives warrow::parseBoundsDirectives(const std::string &Source) {
  BoundsDirectives D;
  std::istringstream In(Source);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Start = Line.find_first_not_of(" \t");
    if (Start == std::string::npos)
      continue;
    std::string_view Rest(Line.data() + Start, Line.size() - Start);
    auto Consume = [&Rest](std::string_view Prefix) {
      if (Rest.substr(0, Prefix.size()) != Prefix)
        return false;
      Rest.remove_prefix(Prefix.size());
      return true;
    };
    if (Consume("// EXPECT-ALARMS:")) {
      std::istringstream Fields{std::string(Rest)};
      std::string Key;
      uint64_t Count = 0;
      if (Fields >> Key >> Count)
        D.ExpectedAlarms.push_back({Key, Count});
    } else if (Consume("// SOLVER:")) {
      std::istringstream Fields{std::string(Rest)};
      std::string Name;
      if (Fields >> Name)
        D.Solvers.push_back(Name);
    }
  }
  return D;
}
