//===- workloads/bounds_suite.cpp - Bounds/assert benchmarks -------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/bounds_suite.h"

#include "corpus/corpus.h"

#include <cstdio>
#include <cstdlib>

using namespace warrow;

namespace {

/// Loads the on-disk corpus tier backing this suite. The suite is the
/// known-answer baseline of the bounds benches and tests, so a missing
/// or malformed corpus is a build-tree problem, not a smaller suite:
/// fail loudly instead of returning fewer programs.
std::vector<BoundsBenchmark> loadSuite() {
  std::string Dir = corpus::corpusRoot() + "/bounds";
  std::string Err;
  std::vector<corpus::CorpusFile> Files = corpus::loadCorpus(Dir, Err);
  if (!Err.empty() || Files.empty()) {
    std::fprintf(stderr,
                 "bounds_suite: cannot load the corpus from '%s' (set "
                 "WARROW_CORPUS_DIR to relocate)\n%s",
                 Dir.c_str(), Err.c_str());
    std::abort();
  }
  std::vector<BoundsBenchmark> Suite;
  Suite.reserve(Files.size());
  for (corpus::CorpusFile &F : Files)
    Suite.push_back({std::move(F.Name), std::move(F.Source)});
  return Suite;
}

} // namespace

const std::vector<BoundsBenchmark> &warrow::boundsSuite() {
  static const std::vector<BoundsBenchmark> Suite = loadSuite();
  return Suite;
}

const BoundsBenchmark *warrow::findBoundsBenchmark(const std::string &Name) {
  for (const BoundsBenchmark &B : boundsSuite())
    if (B.Name == Name)
      return &B;
  return nullptr;
}

std::optional<uint64_t>
BoundsDirectives::expectedFor(std::string_view Domain,
                              std::string_view Solver) const {
  corpus::CorpusDirectives D;
  D.ExpectedAlarms = ExpectedAlarms;
  return D.expectedAlarmsFor(Domain, Solver);
}

BoundsDirectives warrow::parseBoundsDirectives(const std::string &Source) {
  corpus::ParsedDirectives Parsed = corpus::parseCorpusDirectives(Source);
  BoundsDirectives D;
  D.ExpectedAlarms = std::move(Parsed.D.ExpectedAlarms);
  D.Solvers = std::move(Parsed.D.Solvers);
  for (const corpus::DirectiveError &E : Parsed.Errors)
    D.Errors.push_back("line " + std::to_string(E.Line) + ": " + E.Message);
  return D;
}
