//===- workloads/bounds_suite.h - Bounds/assert benchmarks ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Known-answer mini-C programs for the bounds/assert checker
/// (analysis/bounds.h), covering the two precision axes of the domain
/// comparison:
///
///   - ⊟ vs two-phase: programs whose only alarm sits in code reachable
///     solely under widened loop bounds feeding a global — the
///     ⊟-iteration retracts the stale side-effect contribution, while
///     the two-phase baseline's frozen globals keep it (Fig. 7 style).
///   - zones vs intervals: programs whose safety argument is a
///     difference invariant (`j - i == c`) that survives DBM widening
///     while both endpoint intervals widen to infinity.
///
/// The corpus is *directive-driven*: each program's expected alarm
/// counts live in header comments of its own source, parsed by
/// `parseBoundsDirectives`, so the known answers travel with the program
/// text rather than a side table:
///
///     // EXPECT-ALARMS: <domain>/<solver> <n>
///     // SOLVER: <registry solver name>
///
/// `<domain>` is `interval`, `zones` or `*`; `<solver>` is a registry
/// name (`warrow`, `widen`, `two-phase`, ...) or `*`. More specific
/// keys win (`zones/warrow` over `zones/*` over `*/warrow` over `*`).
/// `SOLVER:` lines, when present, restrict which solvers a runner
/// exercises; without any, runners use their own default set.
///
/// As of the corpus-runner generalization the programs live on disk
/// under `tests/corpus/bounds/` (see corpus/corpus.h) and this suite is
/// a thin loader over them; `parseBoundsDirectives` delegates to the
/// strict corpus parser, so malformed or unknown directives surface in
/// `BoundsDirectives::Errors` instead of being silently dropped.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_WORKLOADS_BOUNDS_SUITE_H
#define WARROW_WORKLOADS_BOUNDS_SUITE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace warrow {

/// Parsed header directives of a bounds program.
struct BoundsDirectives {
  /// "domain/solver" (either side possibly "*") -> expected alarm count.
  std::vector<std::pair<std::string, uint64_t>> ExpectedAlarms;
  /// Solvers the runner should exercise (empty = runner default).
  std::vector<std::string> Solvers;
  /// Parse diagnostics ("line N: message"). Non-empty means the header
  /// is malformed — consumers must treat the directives as unusable, so
  /// a typoed `EXPECT-*` key can never pass vacuously.
  std::vector<std::string> Errors;

  /// Expected alarms for a configuration; most specific key wins,
  /// nullopt when no key covers it.
  std::optional<uint64_t> expectedFor(std::string_view Domain,
                                      std::string_view Solver) const;
};

/// Parses `// EXPECT-ALARMS:` / `// SOLVER:` comment lines of \p Source
/// via the strict corpus parser (corpus/directives.h). Malformed
/// directive lines and unknown `EXPECT-*`/`SOLVER`-prefixed keys are
/// hard errors reported in `Errors`.
BoundsDirectives parseBoundsDirectives(const std::string &Source);

/// One bounds benchmark; the known answer is embedded in Source.
struct BoundsBenchmark {
  std::string Name;
  std::string Source;
};

/// The full suite, in no particular order.
const std::vector<BoundsBenchmark> &boundsSuite();

/// Looks up a benchmark by name (null if absent).
const BoundsBenchmark *findBoundsBenchmark(const std::string &Name);

} // namespace warrow

#endif // WARROW_WORKLOADS_BOUNDS_SUITE_H
