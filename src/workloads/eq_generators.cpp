//===- workloads/eq_generators.cpp - Synthetic equation systems ---------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/eq_generators.h"

#include "support/rng.h"

#include <algorithm>

using namespace warrow;

DenseSystem<NatInf> warrow::paperExampleOne() {
  DenseSystem<NatInf> S;
  Var X1 = S.addVar("x1");
  Var X2 = S.addVar("x2");
  Var X3 = S.addVar("x3");
  using Get = DenseSystem<NatInf>::GetFn;
  S.define(X1, [X2](const Get &G) { return G(X2); }, {X2});
  S.define(X2, [X3](const Get &G) { return G(X3).plus(1); }, {X3});
  S.define(X3, [X1](const Get &G) { return G(X1); }, {X1});
  return S;
}

DenseSystem<NatInf> warrow::paperExampleTwo() {
  DenseSystem<NatInf> S;
  Var X1 = S.addVar("x1");
  Var X2 = S.addVar("x2");
  using Get = DenseSystem<NatInf>::GetFn;
  S.define(
      X1,
      [X1, X2](const Get &G) { return G(X1).plus(1).meet(G(X2).plus(1)); },
      {X1, X2});
  S.define(
      X2,
      [X1, X2](const Get &G) { return G(X2).plus(1).meet(G(X1).plus(1)); },
      {X1, X2});
  return S;
}

LocalSystem<uint64_t, NatInf> warrow::paperExampleFive() {
  using Sys = LocalSystem<uint64_t, NatInf>;
  return Sys([](uint64_t V) -> Sys::Rhs {
    if (V % 2 == 0) {
      uint64_t N = V / 2;
      return [V, N](const Sys::Get &Get) {
        // y_{2n} = max(y_{y_{2n}}, n): the current value of y_{2n} is the
        // index of the inner read.
        NatInf Self = Get(V);
        if (Self.isInf())
          return NatInf::inf();
        return Get(Self.finite()).join(NatInf(N));
      };
    }
    uint64_t N = (V - 1) / 2;
    return [N](const Sys::Get &Get) { return Get(6 * N + 4); };
  });
}

DenseSystem<Interval> warrow::chainSystem(unsigned Length, int64_t Bound) {
  DenseSystem<Interval> S;
  using Get = DenseSystem<Interval>::GetFn;
  for (unsigned I = 0; I < Length; ++I)
    S.addVar("c" + std::to_string(I));
  S.define(0, [](const Get &) { return Interval::constant(0); }, {});
  Interval Cap = Interval::make(0, Bound);
  for (Var X = 1; X < Length; ++X) {
    Var Prev = X - 1;
    S.define(
        X,
        [Prev, Cap](const Get &G) {
          return G(Prev).add(Interval::constant(1)).meet(Cap);
        },
        {Prev});
  }
  return S;
}

DenseSystem<Interval> warrow::ringSystem(unsigned Length, int64_t Bound) {
  DenseSystem<Interval> S;
  using Get = DenseSystem<Interval>::GetFn;
  for (unsigned I = 0; I < Length; ++I)
    S.addVar("r" + std::to_string(I));
  Interval Cap = Interval::make(0, Bound);
  Interval Step = Interval::make(0, 1);
  for (Var X = 0; X < Length; ++X) {
    Var Prev = X == 0 ? Length - 1 : X - 1;
    if (X == 0) {
      S.define(
          X,
          [Prev, Cap, Step](const Get &G) {
            return Interval::constant(0).join(
                G(Prev).add(Step).meet(Cap));
          },
          {Prev});
    } else {
      S.define(
          X,
          [Prev, Cap, Step](const Get &G) {
            return G(Prev).add(Step).meet(Cap);
          },
          {Prev});
    }
  }
  return S;
}

DenseSystem<Interval> warrow::randomMonotoneSystem(unsigned Size,
                                                   unsigned Degree,
                                                   int64_t Bound,
                                                   uint64_t Seed) {
  DenseSystem<Interval> S;
  using Get = DenseSystem<Interval>::GetFn;
  Rng R(Seed);
  for (unsigned I = 0; I < Size; ++I)
    S.addVar("v" + std::to_string(I));
  Interval Cap = Interval::make(0, Bound);
  for (Var X = 0; X < Size; ++X) {
    std::vector<Var> Deps;
    std::vector<int64_t> Increments;
    for (unsigned D = 0; D < Degree; ++D) {
      Deps.push_back(static_cast<Var>(R.below(Size)));
      Increments.push_back(R.range(0, 3));
    }
    bool Seeded = X == 0 || R.chance(1, 8);
    S.define(
        X,
        [Deps, Increments, Cap, Seeded](const Get &G) {
          Interval Acc = Seeded ? Interval::constant(0) : Interval::bot();
          for (size_t I = 0; I < Deps.size(); ++I)
            Acc = Acc.join(G(Deps[I])
                               .add(Interval::constant(Increments[I]))
                               .meet(Cap));
          return Acc;
        },
        Deps);
  }
  return S;
}

DenseSystem<Interval> warrow::manyComponentSystem(unsigned NumComps,
                                                  unsigned CompSize,
                                                  int64_t Bound,
                                                  unsigned CrossLinks,
                                                  uint64_t Seed) {
  DenseSystem<Interval> S;
  using Get = DenseSystem<Interval>::GetFn;
  Rng R(Seed);
  for (unsigned C = 0; C < NumComps; ++C)
    for (unsigned I = 0; I < CompSize; ++I)
      S.addVar("m" + std::to_string(C) + "_" + std::to_string(I));
  Interval Cap = Interval::make(0, Bound);
  Interval Step = Interval::make(0, 1);
  for (unsigned C = 0; C < NumComps; ++C) {
    Var Base = C * CompSize;
    for (unsigned I = 0; I < CompSize; ++I) {
      Var X = Base + I;
      Var Prev = I == 0 ? Base + CompSize - 1 : X - 1;
      std::vector<Var> Deps = {Prev};
      // Cross links only at the ring entry, only from strictly earlier
      // components: the condensation stays one SCC per ring.
      if (I == 0 && C > 0)
        for (unsigned L = 0; L < CrossLinks; ++L)
          Deps.push_back(static_cast<Var>(R.below(Base)));
      bool Entry = I == 0;
      S.define(
          X,
          [Deps, Cap, Step, Entry](const Get &G) {
            Interval Acc =
                Entry ? Interval::constant(0) : Interval::bot();
            for (Var Y : Deps)
              Acc = Acc.join(G(Y).add(Step).meet(Cap));
            return Acc;
          },
          Deps);
    }
  }
  return S;
}

DenseSystem<Interval> warrow::randomNonMonotoneSystem(unsigned Size,
                                                      unsigned Degree,
                                                      int64_t Bound,
                                                      uint64_t Seed) {
  DenseSystem<Interval> S;
  using Get = DenseSystem<Interval>::GetFn;
  Rng R(Seed);
  for (unsigned I = 0; I < Size; ++I)
    S.addVar("n" + std::to_string(I));
  Interval Cap = Interval::make(0, Bound);
  for (Var X = 0; X < Size; ++X) {
    // Per dependency: 0 = monotone increment, 1 = negated, 2 = reset.
    struct Dep {
      Var Y;
      int Kind;
      int64_t A; // Increment / threshold.
      int64_t B; // High value (negated) — the low branch is B / 2.
    };
    std::vector<Dep> Deps;
    std::vector<Var> DepVars;
    for (unsigned D = 0; D < Degree; ++D) {
      Dep Item;
      Item.Y = static_cast<Var>(R.below(Size));
      Item.Kind = static_cast<int>(R.below(3));
      Item.A = Item.Kind == 0 ? R.range(0, 3) : R.range(1, Bound);
      Item.B = R.range(2, Bound);
      Deps.push_back(Item);
      DepVars.push_back(Item.Y);
    }
    bool Seeded = X == 0 || R.chance(1, 8);
    S.define(
        X,
        [Deps, Cap, Seeded](const Get &G) {
          Interval Acc = Seeded ? Interval::constant(0) : Interval::bot();
          for (const Dep &Item : Deps) {
            Interval V = G(Item.Y);
            Interval Contribution;
            switch (Item.Kind) {
            case 0: // Monotone: capped increment.
              Contribution =
                  V.add(Interval::constant(Item.A)).meet(Cap);
              break;
            case 1: // Negated: shrinks as the dependency grows.
              Contribution = V.leq(Interval::make(0, Item.A))
                                 ? Interval::make(0, Item.B)
                                 : Interval::make(0, Item.B / 2);
              break;
            default: // Reset: collapses once the dependency grows.
              Contribution = V.leq(Interval::make(0, Item.A))
                                 ? V.meet(Cap)
                                 : Interval::constant(0);
            }
            Acc = Acc.join(Contribution);
          }
          return Acc;
        },
        DepVars);
  }
  return S;
}

StressSystem warrow::stressSideSystem(uint64_t NumRings, unsigned RingSize,
                                      int64_t Bound, unsigned CrossLinks,
                                      uint64_t Seed) {
  // Id scheme: ring node (r, p) = r * RingSize + p (requires the ring
  // range to stay below the tag bits); tagged ranges for the synthetic
  // layers so no id arithmetic ever needs the exact layer sizes.
  constexpr uint64_t AccTag = 1ull << 40;
  constexpr uint64_t AggTag = 1ull << 41;
  constexpr uint64_t RootId = 1ull << 42;
  constexpr uint64_t NumAccs = 64;
  constexpr uint64_t AggArity = 64;
  const uint64_t NumAggs = (NumRings + AggArity - 1) / AggArity;

  using Sys = SideEffectingSystem<uint64_t, Interval>;
  const Interval Cap = Interval::make(0, Bound);
  const Interval Step = Interval::make(0, 1);

  StressSystem Out;
  Out.Root = RootId;
  Out.NumUnknowns = NumRings * RingSize + NumAggs + NumAccs + 1;
  Out.System = Sys(
      [=](uint64_t X) -> Sys::Rhs {
        if (X == RootId)
          return [=](const Sys::Get &Get, const Sys::Side &) {
            Interval Acc = Interval::bot();
            for (uint64_t A = 0; A < NumAggs; ++A)
              Acc = Acc.join(Get(AggTag | A));
            for (uint64_t K = 0; K < NumAccs; ++K)
              Acc = Acc.join(Get(AccTag | K));
            return Acc;
          };
        if (X & AggTag) {
          uint64_t A = X & ~AggTag;
          return [=](const Sys::Get &Get, const Sys::Side &) {
            Interval Acc = Interval::bot();
            uint64_t End = std::min((A + 1) * AggArity, NumRings);
            for (uint64_t R = A * AggArity; R < End; ++R)
              Acc = Acc.join(Get(R * RingSize));
            return Acc;
          };
        }
        if (X & AccTag)
          // Accumulators have no equation of their own: their value is
          // the join of the ring heads' side-effect contributions.
          return [](const Sys::Get &, const Sys::Side &) {
            return Interval::bot();
          };
        uint64_t R = X / RingSize;
        uint64_t P = X % RingSize;
        if (P != 0)
          return [=](const Sys::Get &Get, const Sys::Side &) {
            return Get(X - 1).add(Step).meet(Cap);
          };
        // Ring head: close the cycle from the tail, seed [0,0], join the
        // hash-chosen earlier heads, and contribute to an accumulator.
        return [=](const Sys::Get &Get, const Sys::Side &Side) {
          Interval Acc = Interval::constant(0);
          Acc = Acc.join(Get(X + RingSize - 1).add(Step).meet(Cap));
          if (R > 0) {
            Rng Links(Seed ^ (R * 0x9e3779b97f4a7c15ull));
            for (unsigned L = 0; L < CrossLinks; ++L)
              Acc = Acc.join(Get(Links.below(R) * RingSize).meet(Cap));
          }
          Side(AccTag | (Rng(Seed ^ ~R).below(NumAccs)), Acc);
          return Acc;
        };
      });
  return Out;
}

DenseSystem<Interval> warrow::oscillatingSystem(int64_t K) {
  // x0 flips between [0,+inf) and [0,5] depending on its own value: a
  // non-monotone right-hand side under which plain ⊟ alternates widening
  // and narrowing forever. x1 = x0 tags along.
  DenseSystem<Interval> S;
  using Get = DenseSystem<Interval>::GetFn;
  Var X0 = S.addVar("osc");
  Var X1 = S.addVar("dep");
  S.define(
      X0,
      [X0, K](const Get &G) {
        if (G(X0).leq(Interval::make(0, K)))
          return Interval::atLeast(Bound(0));
        return Interval::make(0, 5);
      },
      {X0});
  S.define(X1, [X0](const Get &G) { return G(X0); }, {X0});
  return S;
}
