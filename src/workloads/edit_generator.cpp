//===- workloads/edit_generator.cpp - Program edit sequences -------------====//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/edit_generator.h"

#include "support/rng.h"

#include <cassert>

using namespace warrow;

namespace {

/// Source emission helper (same shape as spec_generator's).
class SourceWriter {
public:
  void line(const std::string &Text) {
    Out.append(2 * Indent, ' ');
    Out += Text;
    Out += '\n';
  }
  void open(const std::string &Text) {
    line(Text + " {");
    ++Indent;
  }
  void close() {
    --Indent;
    line("}");
  }
  std::string take() { return std::move(Out); }

private:
  std::string Out;
  unsigned Indent = 0;
};

/// Independent per-declaration stream: the body of a function (or a
/// global's base initializer) is a pure function of these inputs, so one
/// edit re-draws exactly one declaration.
Rng streamFor(uint64_t Seed, uint64_t Decl, uint64_t Variant) {
  return Rng(Seed ^ (Decl + 1) * 0x9e3779b97f4a7c15ULL ^
             (Variant + 1) * 0xbf58476d1ce4e5b9ULL);
}

unsigned levelOf(const EditProgramSpec &Spec, unsigned F) {
  unsigned Depth = Spec.MaxCallDepth == 0 ? 1 : Spec.MaxCallDepth;
  if (F >= Spec.NumFunctions)
    return Depth - 1; // Added functions are leaves.
  return static_cast<unsigned>((static_cast<uint64_t>(F) * Depth) /
                               Spec.NumFunctions);
}

unsigned firstOfLevel(const EditProgramSpec &Spec, unsigned L) {
  unsigned Depth = Spec.MaxCallDepth == 0 ? 1 : Spec.MaxCallDepth;
  uint64_t Num = static_cast<uint64_t>(L) * Spec.NumFunctions;
  unsigned F = static_cast<unsigned>((Num + Depth - 1) / Depth);
  while (F < Spec.NumFunctions && levelOf(Spec, F) != L)
    ++F;
  return F;
}

int64_t baseGlobalInit(const EditProgramSpec &Spec, unsigned G) {
  Rng R = streamFor(Spec.Seed, 1000000 + G, 0);
  return static_cast<int64_t>(R.below(20));
}

/// Emits function F's body into W. Depends only on (Seed, F, Variant) and
/// the *spec* (base function count, depth, global count) — never on other
/// functions' variants, so their text survives the edit byte-identically.
void emitFunction(const EditProgramSpec &Spec, unsigned F, uint32_t Variant,
                  SourceWriter &W) {
  Rng R = streamFor(Spec.Seed, F, Variant);
  unsigned Depth = Spec.MaxCallDepth == 0 ? 1 : Spec.MaxCallDepth;
  unsigned Level = levelOf(Spec, F);
  std::string Name = "f" + std::to_string(F);

  W.open("int " + Name + "(int p0, int p1)");
  W.line("int acc = p0 % " + std::to_string(10 + R.below(40)) + ";");
  W.line("int key = p1;");

  unsigned Loops = 1 + static_cast<unsigned>(R.below(2));
  for (unsigned L = 0; L < Loops; ++L) {
    std::string IV = "i" + std::to_string(L);
    int64_t Bound = 3 + static_cast<int64_t>(R.below(12));
    int64_t Scale = 1 + static_cast<int64_t>(R.below(4));
    int64_t Cap = 100 + static_cast<int64_t>(R.below(900));
    W.line("int " + IV + " = 0;");
    W.open("while (" + IV + " < " + std::to_string(Bound) + ")");
    W.line("acc = acc + " + IV + " * " + std::to_string(Scale) + ";");
    W.line("if (acc > " + std::to_string(Cap) + ")");
    W.line("  acc = " + std::to_string(Cap) + ";");
    if (Spec.NumGlobals > 0 && R.chance(1, 2)) {
      unsigned G = static_cast<unsigned>(R.below(Spec.NumGlobals));
      W.line("g" + std::to_string(G) + " = " + IV + ";");
    }
    W.line(IV + " = " + IV + " + 1;");
    W.close();
  }

  if (Spec.NumGlobals > 0 && R.chance(2, 3)) {
    unsigned G = static_cast<unsigned>(R.below(Spec.NumGlobals));
    W.line("int gin = g" + std::to_string(G) + ";");
    W.open("if (gin > acc)");
    W.line("acc = acc + " + std::to_string(1 + R.below(5)) + ";");
    W.close();
  }

  // Calls into the next level of the *base* layout; added functions (and
  // bottom-level base functions) are leaves.
  if (F < Spec.NumFunctions && Level + 1 < Depth) {
    unsigned Lo = firstOfLevel(Spec, Level + 1);
    unsigned Hi =
        Level + 2 < Depth ? firstOfLevel(Spec, Level + 2) : Spec.NumFunctions;
    if (Lo < Hi) {
      unsigned Calls = 1 + static_cast<unsigned>(R.below(2));
      for (unsigned C = 0; C < Calls; ++C) {
        unsigned Callee = Lo + static_cast<unsigned>(R.below(Hi - Lo));
        std::string Result = "t" + std::to_string(C);
        std::string ArgOne = R.chance(1, 2)
                                 ? std::to_string(3 + R.below(30))
                                 : std::string("key");
        W.line("int " + Result + " = f" + std::to_string(Callee) + "(acc % " +
               std::to_string(5 + R.below(20)) + ", " + ArgOne + ");");
        W.line("acc = (acc + " + Result + ") % " +
               std::to_string(200 + R.below(300)) + ";");
      }
    }
  }

  if (Spec.NumGlobals > 0 && R.chance(1, 2)) {
    unsigned G = static_cast<unsigned>(R.below(Spec.NumGlobals));
    W.line("g" + std::to_string(G) + " = acc % " +
           std::to_string(16 + R.below(112)) + ";");
  }
  // The variant literal makes a body change *certain*, independent of the
  // re-drawn structure above coinciding.
  W.line("acc = (acc + " + std::to_string(Variant) + ") % 97;");
  W.line("return acc % " + std::to_string(100 + R.below(900)) + ";");
  W.close();
  W.line("");
}

} // namespace

EditProgramState warrow::initialEditState(const EditProgramSpec &Spec) {
  EditProgramState State;
  State.BodyVariant.assign(Spec.NumFunctions, 0);
  State.GlobalBump.assign(Spec.NumGlobals, 0);
  return State;
}

void warrow::applyEdit(const EditProgramSpec &Spec, EditProgramState &State,
                       const EditStep &Step) {
  switch (Step.Kind) {
  case EditKind::ChangeBody:
    assert(Step.Target < State.BodyVariant.size() && "no such function");
    ++State.BodyVariant[Step.Target];
    break;
  case EditKind::ChangeGlobalInit:
    assert(Step.Target < State.GlobalBump.size() && "no such global");
    ++State.GlobalBump[Step.Target];
    break;
  case EditKind::AddFunction:
    ++State.AddedFunctions;
    State.BodyVariant.push_back(0);
    break;
  }
  (void)Spec;
}

std::string warrow::renderEditProgram(const EditProgramSpec &Spec,
                                      const EditProgramState &State) {
  assert(State.BodyVariant.size() == Spec.NumFunctions + State.AddedFunctions &&
         "state/spec mismatch");
  SourceWriter W;

  W.line("// Edit-generated program (seed " + std::to_string(Spec.Seed) +
         "). Do not edit by hand.");
  for (unsigned G = 0; G < Spec.NumGlobals; ++G)
    W.line("int g" + std::to_string(G) + " = " +
           std::to_string(baseGlobalInit(Spec, G) + State.GlobalBump[G]) +
           ";");
  W.line("");

  for (unsigned F = 0; F < State.BodyVariant.size(); ++F)
    emitFunction(Spec, F, State.BodyVariant[F], W);

  // main drives every level-0 base function plus each added function. Its
  // text depends only on the added-function count (an AddFunction edit is
  // predicted to change main; nothing else changes it).
  unsigned Depth = Spec.MaxCallDepth == 0 ? 1 : Spec.MaxCallDepth;
  unsigned TopEnd = Depth > 1 ? firstOfLevel(Spec, 1) : Spec.NumFunctions;
  W.open("int main()");
  W.line("int total = 0;");
  W.line("int it = 0;");
  W.open("while (it < 3)");
  for (unsigned F = 0; F < TopEnd; ++F) {
    std::string Result = "r" + std::to_string(F);
    W.line("int " + Result + " = f" + std::to_string(F) + "(it, " +
           std::to_string(5 + 11 * F) + ");");
    W.line("total = (total + " + Result + ") % 10000;");
  }
  W.line("it = it + 1;");
  W.close();
  for (unsigned A = 0; A < State.AddedFunctions; ++A) {
    unsigned F = Spec.NumFunctions + A;
    std::string Result = "a" + std::to_string(A);
    W.line("int " + Result + " = f" + std::to_string(F) + "(total % 13, " +
           std::to_string(7 + 13 * A) + ");");
    W.line("total = (total + " + Result + ") % 10000;");
  }
  W.line("return total;");
  W.close();

  return W.take();
}

std::vector<EditStep>
warrow::generateEditScript(const EditProgramSpec &Spec, unsigned NumSteps) {
  Rng R(Spec.Seed ^ 0x5ced17ed5eedULL);
  std::vector<EditStep> Steps;
  unsigned NumFuncs = Spec.NumFunctions;
  for (unsigned I = 0; I < NumSteps; ++I) {
    EditStep Step;
    uint64_t Roll = R.below(10);
    if (Roll < 6 || Spec.NumGlobals == 0) {
      Step.Kind = EditKind::ChangeBody;
      Step.Target = static_cast<unsigned>(R.below(NumFuncs));
    } else if (Roll < 8) {
      Step.Kind = EditKind::ChangeGlobalInit;
      Step.Target = static_cast<unsigned>(R.below(Spec.NumGlobals));
    } else {
      Step.Kind = EditKind::AddFunction;
      ++NumFuncs;
    }
    Steps.push_back(Step);
  }
  return Steps;
}

EditPrediction warrow::predictEdit(const EditProgramSpec &Spec,
                                   const EditProgramState &State,
                                   const EditStep &Step) {
  EditPrediction P;
  switch (Step.Kind) {
  case EditKind::ChangeBody:
    P.ChangedFuncs.insert("f" + std::to_string(Step.Target));
    break;
  case EditKind::ChangeGlobalInit:
    P.ChangedGlobals.insert("g" + std::to_string(Step.Target));
    break;
  case EditKind::AddFunction:
    P.AddedFuncs.insert(
        "f" + std::to_string(Spec.NumFunctions + State.AddedFunctions));
    P.ChangedFuncs.insert("main");
    break;
  }
  return P;
}
