//===- workloads/race_suite.cpp - Concurrent race benchmarks ------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/race_suite.h"

using namespace warrow;

namespace {

// --- counter_locked: both threads increment under the same mutex ----------
// No race: every access to g holds m.
const char *CounterLockedSource = R"(
int g = 0;
mutex m;

void worker(int n) {
  int j = 0;
  while (j < n) {
    lock(m);
    g = g + 1;
    unlock(m);
    j = j + 1;
  }
}

int main() {
  spawn worker(5);
  int i = 0;
  while (i < 5) {
    lock(m);
    g = g + 2;
    unlock(m);
    i = i + 1;
  }
  lock(m);
  int snapshot = g;
  unlock(m);
  return snapshot;
}
)";

// --- counter_unlocked: the worker forgets the lock ------------------------
// Race on g: main's locked writes vs the worker's bare writes.
const char *CounterUnlockedSource = R"(
int g = 0;
mutex m;

void worker(int n) {
  int j = 0;
  while (j < n) {
    g = g + 1;
    j = j + 1;
  }
}

int main() {
  spawn worker(5);
  int i = 0;
  while (i < 5) {
    lock(m);
    g = g + 2;
    unlock(m);
    i = i + 1;
  }
  return 0;
}
)";

// --- mixed_protect: consistent locking, but of *different* mutexes --------
// Race on g: both writes are protected, yet the locksets are disjoint.
const char *MixedProtectSource = R"(
int g = 0;
mutex a;
mutex b;

void worker() {
  lock(b);
  g = g + 1;
  unlock(b);
}

int main() {
  spawn worker();
  lock(a);
  g = g + 2;
  unlock(a);
  return 0;
}
)";

// --- phase_protect: unprotected access only before the spawn --------------
// No race: the bare initialization write is single-threaded; every
// multithreaded access holds m. Exercises the threading-phase flag.
const char *PhaseProtectSource = R"(
int g = 0;
mutex m;

void worker() {
  lock(m);
  g = g + 1;
  unlock(m);
}

int main() {
  g = 42;
  spawn worker();
  lock(m);
  g = g + 1;
  unlock(m);
  lock(m);
  int snapshot = g;
  unlock(m);
  return snapshot;
}
)";

// --- reader_writer: unlocked read against a locked write ------------------
// Race on g: the worker's write holds m but main's read holds nothing,
// and read/write pairs race too.
const char *ReaderWriterSource = R"(
int g = 0;
mutex m;

void worker(int n) {
  int j = 0;
  while (j < n) {
    lock(m);
    g = j;
    unlock(m);
    j = j + 1;
  }
}

int main() {
  spawn worker(8);
  int seen = g;
  if (seen > 4)
    seen = 4;
  return seen;
}
)";

// --- two_counters: one disciplined global, one racy one -------------------
// Race on unsafe only: two spawned workers hammer it bare, while safe is
// always accessed under m by everyone.
const char *TwoCountersSource = R"(
int safe = 0;
int unsafe = 0;
mutex m;

void bumper(int n) {
  int j = 0;
  while (j < n) {
    unsafe = unsafe + 1;
    lock(m);
    safe = safe + 1;
    unlock(m);
    j = j + 1;
  }
}

int main() {
  spawn bumper(3);
  spawn bumper(4);
  lock(m);
  int total = safe;
  unlock(m);
  return total;
}
)";

// --- lock_split: extra locks never hurt; a second global left bare --------
// Race on h only: g's writers share m (main additionally holds n, which
// is harmless); h has a bare multithreaded write.
const char *LockSplitSource = R"(
int g = 0;
int h = 0;
mutex m;
mutex n;

void worker() {
  lock(m);
  g = g + 1;
  unlock(m);
  h = h + 1;
}

int main() {
  spawn worker();
  lock(n);
  lock(m);
  g = g + 2;
  unlock(m);
  unlock(n);
  lock(m);
  h = h + 2;
  unlock(m);
  return 0;
}
)";

// --- narrow_guard: the Example-7-style precision program ------------------
// No real race: every live access to g holds m. The only bare write sits
// under `if (i > 10)` after a `while (i < 10)` loop — dead, but reachable
// in the widened phase-1 state (i becomes [0,+inf]). The ⊟-iteration
// narrows i to [10,10] at the exit, refutes the guard and *replaces* the
// stale access contribution with the empty set; the two-phase baseline
// freezes the accumulator after phase 1 and keeps the spurious race.
const char *NarrowGuardSource = R"(
int g = 0;
mutex m;

void worker(int n) {
  int j = 0;
  while (j < n) {
    lock(m);
    g = g + 1;
    unlock(m);
    j = j + 1;
  }
}

int main() {
  spawn worker(10);
  int i = 0;
  while (i < 10) {
    lock(m);
    g = g + 1;
    unlock(m);
    i = i + 1;
  }
  if (i > 10) {
    g = 0;
  }
  return i;
}
)";

// --- narrow_bound_read: dead unlocked read, same mechanism ----------------
// No real race: g's live accesses all hold m; the bare read `s = g + 1`
// requires i > 100 after a loop bounded by 8.
const char *NarrowBoundReadSource = R"(
int g = 0;
mutex m;

void worker(int n) {
  int j = 0;
  while (j < n) {
    lock(m);
    g = g + j;
    unlock(m);
    j = j + 1;
  }
}

int main() {
  spawn worker(8);
  int i = 0;
  int s = 0;
  while (i < 8) {
    lock(m);
    s = g;
    unlock(m);
    i = i + 1;
  }
  if (i > 100) {
    s = g + 1;
  }
  return s;
}
)";

std::vector<RaceBenchmark> buildSuite() {
  std::vector<RaceBenchmark> Suite;
  Suite.push_back({"counter_locked", CounterLockedSource, {}, false, {}});
  Suite.push_back(
      {"counter_unlocked", CounterUnlockedSource, {"g"}, false, {}});
  Suite.push_back({"mixed_protect", MixedProtectSource, {"g"}, false, {}});
  Suite.push_back({"phase_protect", PhaseProtectSource, {}, false, {}});
  Suite.push_back({"reader_writer", ReaderWriterSource, {"g"}, false, {}});
  Suite.push_back(
      {"two_counters", TwoCountersSource, {"unsafe"}, false, {}});
  Suite.push_back({"lock_split", LockSplitSource, {"h"}, false, {}});
  Suite.push_back({"narrow_guard", NarrowGuardSource, {}, true, {}});
  Suite.push_back(
      {"narrow_bound_read", NarrowBoundReadSource, {}, true, {}});
  return Suite;
}

} // namespace

const std::vector<RaceBenchmark> &warrow::raceSuite() {
  static const std::vector<RaceBenchmark> Suite = buildSuite();
  return Suite;
}

const RaceBenchmark *warrow::findRaceBenchmark(const std::string &Name) {
  for (const RaceBenchmark &B : raceSuite())
    if (B.Name == Name)
      return &B;
  return nullptr;
}
