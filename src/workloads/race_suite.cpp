//===- workloads/race_suite.cpp - Concurrent race benchmarks ------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/race_suite.h"

#include "corpus/corpus.h"

#include <cstdio>
#include <cstdlib>

using namespace warrow;

namespace {

/// Loads the on-disk corpus tier backing this suite
/// (tests/corpus/races/*.mc). The known answers come from each file's
/// own directive header: `EXPECT-RACES` names the genuinely racy
/// globals, and the frozen-accumulator precision flag is *derived* from
/// the per-solver `EXPECT-ALARMS` cells (warrow strictly fewer alarms
/// than two-phase) so the directives stay the single source of truth.
std::vector<RaceBenchmark> loadSuite() {
  std::string Dir = corpus::corpusRoot() + "/races";
  std::string Err;
  std::vector<corpus::CorpusFile> Files = corpus::loadCorpus(Dir, Err);
  if (!Err.empty() || Files.empty()) {
    std::fprintf(stderr,
                 "race_suite: cannot load the corpus from '%s' (set "
                 "WARROW_CORPUS_DIR to relocate)\n%s",
                 Dir.c_str(), Err.c_str());
    std::abort();
  }
  std::vector<RaceBenchmark> Suite;
  Suite.reserve(Files.size());
  for (corpus::CorpusFile &F : Files) {
    RaceBenchmark B;
    B.Name = std::move(F.Name);
    B.Source = std::move(F.Source);
    B.RacyGlobals = std::move(F.D.RacyGlobals);
    B.Inputs = std::move(F.D.Inputs);
    std::optional<uint64_t> Warrow =
        F.D.expectedAlarmsFor("interval", "warrow");
    std::optional<uint64_t> TwoPhase =
        F.D.expectedAlarmsFor("interval", "two-phase");
    B.WarrowBeatsTwoPhase = Warrow && TwoPhase && *Warrow < *TwoPhase;
    Suite.push_back(std::move(B));
  }
  return Suite;
}

} // namespace

const std::vector<RaceBenchmark> &warrow::raceSuite() {
  static const std::vector<RaceBenchmark> Suite = loadSuite();
  return Suite;
}

const RaceBenchmark *warrow::findRaceBenchmark(const std::string &Name) {
  for (const RaceBenchmark &B : raceSuite())
    if (B.Name == Name)
      return &B;
  return nullptr;
}
