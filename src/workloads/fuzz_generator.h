//===- workloads/fuzz_generator.h - Random program fuzzing ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A randomized mini-C program generator for property-based testing.
/// Unlike the SpecCpu-scale generator (which reproduces *structural
/// statistics*), the fuzzer aims for *semantic diversity*: random
/// expression shapes (including division/modulo with guarded divisors),
/// random nesting of branches and loops, break/continue, arrays, global
/// reads/writes, and calls — all while guaranteeing that
///
///  - the program passes sema (unique names, call forms respected),
///  - concrete execution terminates (all loops are counted, recursion
///    is bounded by an explicit depth parameter),
///  - no division or modulo by zero occurs (divisors are `(e % k) + k+1`
///    shaped and hence strictly positive).
///
/// The fuzz soundness test runs the abstract interpreter against the
/// concrete interpreter on hundreds of generated programs.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_WORKLOADS_FUZZ_GENERATOR_H
#define WARROW_WORKLOADS_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>

namespace warrow {

/// Tuning knobs for one fuzzed program.
struct FuzzOptions {
  unsigned MaxFunctions = 4;  ///< Besides main.
  unsigned MaxStmtsPerBlock = 6;
  unsigned MaxDepth = 4;      ///< Statement nesting.
  unsigned MaxLoopBound = 12; ///< All loops count up to a constant bound.
  bool UseGlobals = true;
  bool UseArrays = true;
  bool UseCalls = true;
};

/// Generates a random program; deterministic in \p Seed.
std::string generateFuzzProgram(uint64_t Seed, const FuzzOptions &Options = {});

} // namespace warrow

#endif // WARROW_WORKLOADS_FUZZ_GENERATOR_H
