//===- workloads/spec_generator.cpp - SpecCpu-scale workloads ------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/spec_generator.h"

#include "support/rng.h"

#include <cassert>

using namespace warrow;

namespace {

/// Source emission helper.
class SourceWriter {
public:
  void line(const std::string &Text) {
    Out.append(2 * Indent, ' ');
    Out += Text;
    Out += '\n';
  }
  void open(const std::string &Text) {
    line(Text + " {");
    ++Indent;
  }
  void close() {
    --Indent;
    line("}");
  }
  std::string take() { return std::move(Out); }

private:
  std::string Out;
  unsigned Indent = 0;
};

} // namespace

std::string warrow::generateSpecProgram(const SpecProfile &Profile) {
  Rng R(Profile.Seed);
  SourceWriter W;

  unsigned NumFuncs = Profile.NumFunctions;
  unsigned Depth = Profile.MaxCallDepth == 0 ? 1 : Profile.MaxCallDepth;
  // Level of a function: functions may only call into the next level, so
  // the call graph is acyclic with depth <= Depth.
  auto LevelOf = [&](unsigned F) {
    return static_cast<unsigned>(
        (static_cast<uint64_t>(F) * Depth) / NumFuncs);
  };
  auto FirstOfLevel = [&](unsigned L) -> unsigned {
    // Smallest F with LevelOf(F) == L.
    uint64_t Num = static_cast<uint64_t>(L) * NumFuncs;
    unsigned F = static_cast<unsigned>((Num + Depth - 1) / Depth);
    while (F < NumFuncs && LevelOf(F) != L)
      ++F;
    return F;
  };

  // Globals.
  W.line("// Generated workload '" + Profile.Name + "' (seed " +
         std::to_string(Profile.Seed) + "). Do not edit.");
  for (unsigned G = 0; G < Profile.NumGlobals; ++G)
    W.line("int g" + std::to_string(G) + " = 0;");
  W.line("int g_result = 0;");
  W.line("");

  // Constant pool for context-sensitive call sites.
  std::vector<int64_t> ConstPool;
  for (unsigned V = 0; V < std::max(1u, Profile.ContextVariants); ++V)
    ConstPool.push_back(static_cast<int64_t>(7 + 13 * V));

  unsigned SiteCounter = 0;

  auto EmitFunction = [&](unsigned F) {
    unsigned Level = LevelOf(F);
    std::string Name = "f" + std::to_string(F);
    W.open("int " + Name + "(int p0, int p1)");
    W.line("int acc = p0 % 50;");
    W.line("int key = p1;");

    // Loops.
    for (unsigned L = 0; L < Profile.LoopsPerFunction; ++L) {
      std::string IV = "i" + std::to_string(L);
      int64_t Bound = 5 + static_cast<int64_t>(R.below(28));
      (void)Bound;
      int64_t Scale = 1 + static_cast<int64_t>(R.below(5));
      W.line("int " + IV + " = 0;");
      W.open("while (" + IV + " < " + std::to_string(Bound) + ")");
      W.line("acc = acc + " + IV + " * " + std::to_string(Scale) + ";");
      W.line("if (acc > 1000)");
      W.line("  acc = 1000;");
      W.line("if (acc < -1000)");
      W.line("  acc = -1000;");
      if (Profile.NumGlobals > 0 && R.chance(3, 4)) {
        unsigned G = static_cast<unsigned>(R.below(Profile.NumGlobals));
        // Write a *bounded local* into the global — the pattern whose
        // narrowing the ⊟-solver enables (Fig. 7 discussion).
        W.line("g" + std::to_string(G) + " = " + IV + ";");
      }
      if (R.chance(1, 3)) {
        W.open("if (" + IV + " % 3 == 0)");
        W.line("key = key + 1;");
        W.close();
      }
      W.line(IV + " = " + IV + " + 1;");
      W.close();
    }

    // Global read feeding a branch.
    if (Profile.NumGlobals > 0) {
      unsigned G = static_cast<unsigned>(R.below(Profile.NumGlobals));
      W.line("int gin = g" + std::to_string(G) + ";");
      W.open("if (gin > acc)");
      W.line("acc = acc + 1;");
      W.close();
    }

    // Calls into the next level.
    if (Level + 1 < Depth) {
      unsigned Lo = FirstOfLevel(Level + 1);
      unsigned Hi = Level + 2 < Depth ? FirstOfLevel(Level + 2) : NumFuncs;
      if (Lo < Hi) {
        for (unsigned C = 0; C < Profile.CallsPerFunction; ++C) {
          unsigned Callee =
              Lo + static_cast<unsigned>(R.below(Hi - Lo));
          std::string Result = "t" + std::to_string(C);
          std::string ArgOne;
          if (Profile.ContextVariants > 0 && R.chance(4, 5)) {
            int64_t K = ConstPool[R.below(ConstPool.size())];
            ++SiteCounter;
            ArgOne = std::to_string(K);
          } else {
            ArgOne = "key";
          }
          W.line("int " + Result + " = f" + std::to_string(Callee) +
                 "(acc % 20, " + ArgOne + ");");
          W.line("acc = (acc + " + Result + ") % 500;");
        }
        if (Profile.ContextDrift > 0) {
          // The first loop counter's exit value: an exact constant under
          // ⊟ (head narrows, exit meets the negated guard), but
          // [bound,+inf) under pure ▽ — so this call contributes one
          // *fresh constant context* per ⊟ run and only the shared top
          // context per ▽ run.
          unsigned Callee =
              Lo + static_cast<unsigned>(R.below(Hi - Lo));
          W.line("int post = i0;");
          W.line("int td = f" + std::to_string(Callee) +
                 "(acc % 20, post + " + std::to_string(F % 17) + ");");
          W.line("acc = (acc + td) % 500;");
        }
        if (Profile.ContextDrift < 0 && Profile.NumGlobals > 0) {
          // A call guarded by a narrowable global: globals only ever hold
          // loop counters (< 1000), so the ⊟-solver proves the branch
          // dead and never creates the callee context; the ▽-solver keeps
          // the global at [0,+inf) and must analyze it.
          unsigned Callee =
              Lo + static_cast<unsigned>(R.below(Hi - Lo));
          unsigned Gate = static_cast<unsigned>(R.below(Profile.NumGlobals));
          W.line("int gate = g" + std::to_string(Gate) + ";");
          W.open("if (gate > 5000)");
          W.line("int tg = f" + std::to_string(Callee) + "(acc % 20, " +
                 std::to_string(7000 + F) + ");");
          W.line("acc = (acc + tg) % 500;");
          W.close();
        }
      }
    }

    if (Profile.NumGlobals > 0 && R.chance(1, 2)) {
      unsigned G = static_cast<unsigned>(R.below(Profile.NumGlobals));
      W.line("g" + std::to_string(G) + " = acc % 128;");
    }
    // The single-function edit (no Rng draws: other functions stay
    // byte-identical across the edit).
    if (Profile.EditFunction >= 0 &&
        F == static_cast<unsigned>(Profile.EditFunction))
      W.line("acc = (acc + " + std::to_string(Profile.EditDelta) +
             ") % 512;");
    W.line("return acc % 1000;");
    W.close();
    W.line("");
  };

  for (unsigned F = 0; F < NumFuncs; ++F)
    EmitFunction(F);

  // Pure helpers: no globals, no calls — their incremental-edit cone is
  // just the helper plus main's post-loop suffix. Each draws from its own
  // Rng stream so the functions above and main's driver loop stay
  // byte-identical whether or not helpers exist.
  for (unsigned H = 0; H < Profile.PureHelpers; ++H) {
    Rng HR(Profile.Seed ^ (0x9e3779b97f4a7c15ull * (H + 1)));
    std::string Name = "h" + std::to_string(H);
    W.open("int " + Name + "(int p0, int p1)");
    W.line("int acc = p0 % 40;");
    int64_t Bound = 6 + static_cast<int64_t>(HR.below(20));
    int64_t Scale = 1 + static_cast<int64_t>(HR.below(4));
    int64_t Cap = 300 + static_cast<int64_t>(HR.below(600));
    W.line("int j = 0;");
    W.open("while (j < " + std::to_string(Bound) + ")");
    W.line("acc = acc + j * " + std::to_string(Scale) + ";");
    W.line("if (acc > " + std::to_string(Cap) + ")");
    W.line("  acc = " + std::to_string(Cap) + ";");
    W.line("j = j + 1;");
    W.close();
    W.open("if (p1 > acc)");
    W.line("acc = acc + p1 % 7;");
    W.close();
    // The single-function edit knob addresses helper I as
    // NumFunctions + I (no Rng draws, like the f<N> knob).
    if (Profile.EditFunction >= 0 &&
        static_cast<unsigned>(Profile.EditFunction) == NumFuncs + H)
      W.line("acc = (acc + " + std::to_string(Profile.EditDelta) +
             ") % 512;");
    W.line("return acc % 800;");
    W.close();
    W.line("");
  }

  // main: drive the level-0 functions.
  W.open("int main()");
  W.line("int total = 0;");
  W.line("int it = 0;");
  W.open("while (it < 4)");
  unsigned TopEnd = Depth > 1 ? FirstOfLevel(1) : NumFuncs;
  for (unsigned F = 0; F < std::min(TopEnd, 4u); ++F) {
    std::string Result = "r" + std::to_string(F);
    std::string ArgOne;
    if (Profile.ContextVariants > 0) {
      int64_t K = ConstPool[SiteCounter % ConstPool.size()];
      ++SiteCounter;
      ArgOne = std::to_string(K);
    } else {
      ArgOne = "it";
    }
    W.line("int " + Result + " = f" + std::to_string(F) + "(it, " + ArgOne +
           ");");
    W.line("total = (total + " + Result + ") % 10000;");
  }
  W.line("it = it + 1;");
  W.close();
  for (unsigned H = 0; H < Profile.PureHelpers; ++H) {
    std::string Result = "hr" + std::to_string(H);
    W.line("int " + Result + " = h" + std::to_string(H) + "(total % 9, " +
           std::to_string(7 + 13 * H) + ");");
    W.line("total = (total + " + Result + ") % 10000;");
  }
  W.line("g_result = total;");
  W.line("return total;");
  W.close();

  return W.take();
}

const std::vector<SpecProfile> &warrow::specSuite() {
  static const std::vector<SpecProfile> Suite = [] {
    std::vector<SpecProfile> S;
    auto Add = [&S](const char *Name, unsigned Funcs, unsigned Loops,
                    unsigned Calls, unsigned Globals, unsigned Variants,
                    unsigned Depth, uint64_t Seed) {
      SpecProfile P;
      P.Name = Name;
      P.NumFunctions = Funcs;
      P.LoopsPerFunction = Loops;
      P.CallsPerFunction = Calls;
      P.NumGlobals = Globals;
      P.ContextVariants = Variants;
      P.MaxCallDepth = Depth;
      P.Seed = Seed;
      S.push_back(P);
    };
    // Sized so context-insensitive unknown counts land near Table 1;
    // ContextVariants and ContextDrift shape the ctx/no-ctx ratios and
    // the ⊟-vs-▽ differences per the paper.
    Add("401.bzip2", 345, 2, 2, 10, 1, 8, 401);
    Add("429.mcf", 45, 2, 2, 6, 2, 6, 429);
    Add("433.milc", 300, 2, 3, 12, 4, 8, 433);
    Add("456.hmmer", 320, 2, 4, 14, 7, 8, 456);
    Add("458.sjeng", 370, 2, 4, 14, 7, 8, 458);
    Add("470.lbm", 22, 2, 2, 4, 2, 4, 470);
    Add("482.sphinx", 660, 2, 2, 12, 2, 8, 482);
    for (SpecProfile &P : S) {
      if (P.Name == "456.hmmer" || P.Name == "458.sjeng")
        P.ContextDrift = 1;
      if (P.Name == "470.lbm")
        P.ContextDrift = -1;
    }
    return S;
  }();
  return Suite;
}

const SpecProfile *warrow::findSpecProfile(const std::string &Name) {
  for (const SpecProfile &P : specSuite())
    if (P.Name == Name)
      return &P;
  return nullptr;
}
