//===- workloads/wcet_suite.cpp - Mälardalen-style benchmarks ------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/wcet_suite.h"

#include <algorithm>

using namespace warrow;

int WcetBenchmark::lineCount() const {
  return static_cast<int>(std::count(Source.begin(), Source.end(), '\n'));
}

namespace {

// --- fac: recursive factorial summed into a global ------------------------
const char *FacSource = R"(
int fac_sum = 0;
int fac_calls = 0;

int fac(int n) {
  if (n <= 0)
    return 1;
  int rest = fac(n - 1);
  return n * rest;
}

int main() {
  int i = 0;
  int total = 0;
  while (i <= 5) {
    int f = fac(i);
    total = total + f;
    fac_sum = total;
    fac_calls = i;
    i = i + 1;
  }
  int calls = fac_calls;
  if (calls > 3)
    total = total + 1;
  return total;
}
)";

// --- fibcall: iterative Fibonacci ------------------------------------------
const char *FibcallSource = R"(
int fib_last = 0;

int fib(int n) {
  int fnew = 1;
  int fold = 0;
  int temp = 0;
  int i = 2;
  while (i <= 30 && i <= n) {
    temp = fnew;
    fnew = fnew + fold;
    fold = temp;
    i = i + 1;
  }
  fib_last = i;
  return fnew;
}

int main() {
  int a = fib(26);
  int last = fib_last;
  if (last > 20)
    a = a + 1;
  return a;
}
)";

// --- bs: binary search over a sorted global table --------------------------
const char *BsSource = R"(
int bs_data[15];
int bs_found = 0;
int bs_result = 0;

void bs_init() {
  int i = 0;
  while (i < 15) {
    bs_data[i] = i * 10;
    i = i + 1;
  }
}

int binary_search(int x) {
  int low = 0;
  int up = 14;
  int mid = 0;
  int fvalue = -1;
  while (low <= up) {
    mid = (low + up) / 2;
    if (bs_data[mid] == x) {
      up = low - 1;
      fvalue = mid;
      bs_found = 1;
    } else {
      if (bs_data[mid] > x)
        up = mid - 1;
      else
        low = mid + 1;
    }
  }
  bs_result = fvalue;
  return fvalue;
}

int main() {
  bs_init();
  int key = unknown();
  if (key < 0)
    key = 0;
  if (key > 140)
    key = 140;
  int r = binary_search(key);
  return r;
}
)";

// --- insertsort: insertion sort with dependent nested loops ----------------
const char *InsertsortSource = R"(
int ins_data[11];
int ins_iters = 0;

int main() {
  int i = 0;
  while (i < 11) {
    ins_data[i] = unknown() % 100;
    i = i + 1;
  }
  int j = 1;
  while (j < 11) {
    int k = j;
    while (k > 0 && ins_data[k - 1] > ins_data[k]) {
      int tmp = ins_data[k];
      ins_data[k] = ins_data[k - 1];
      ins_data[k - 1] = tmp;
      k = k - 1;
      ins_iters = k;
    }
    j = j + 1;
  }
  return ins_data[0];
}
)";

// --- bsort100: bubble sort over 100 elements --------------------------------
const char *Bsort100Source = R"(
int bsort_swaps = 0;
int bsort_sorted = 0;

int main() {
  int arr[100];
  int i = 0;
  while (i < 100) {
    arr[i] = unknown() % 1000;
    i = i + 1;
  }
  int pass = 0;
  int done = 0;
  while (pass < 99 && done == 0) {
    int j = 0;
    done = 1;
    while (j < 99 - pass) {
      if (arr[j] > arr[j + 1]) {
        int tmp = arr[j];
        arr[j] = arr[j + 1];
        arr[j + 1] = tmp;
        done = 0;
        bsort_swaps = j;
      }
      j = j + 1;
    }
    pass = pass + 1;
  }
  bsort_sorted = done;
  return arr[0];
}
)";

// --- cnt: count and sum positives in a matrix --------------------------------
const char *CntSource = R"(
int cnt_matrix[16];
int cnt_positive = 0;
int cnt_sum = 0;

void cnt_fill() {
  int i = 0;
  int seed = 1;
  while (i < 16) {
    seed = (seed * 13 + 7) % 256;
    cnt_matrix[i] = seed - 128;
    i = i + 1;
  }
}

int cnt_scan() {
  int row = 0;
  int count = 0;
  int total = 0;
  while (row < 4) {
    int col = 0;
    while (col < 4) {
      int v = cnt_matrix[row * 4 + col];
      if (v > 0) {
        count = count + 1;
        total = total + v;
      }
      col = col + 1;
    }
    row = row + 1;
  }
  cnt_positive = count;
  cnt_sum = total;
  return count;
}

int main() {
  cnt_fill();
  int c = cnt_scan();
  return c;
}
)";

// --- crc: cyclic-redundancy-style bit loop -----------------------------------
const char *CrcSource = R"(
int crc_value = 0;
int crc_bytes = 0;

int crc_update(int crc, int byte) {
  int b = byte;
  int c = crc;
  int bit = 0;
  while (bit < 8) {
    int mix = (c / 128) % 2;
    int inbit = b % 2;
    c = (c * 2) % 256;
    if (mix != inbit)
      c = (c + 7) % 256;
    b = b / 2;
    bit = bit + 1;
  }
  return c;
}

int main() {
  int crc = 0;
  int i = 0;
  int start = crc_bytes;
  while (i < 40) {
    int byte = unknown() % 256;
    if (byte < 0)
      byte = byte + 256;
    crc = crc_update(crc, byte);
    crc_bytes = i;
    i = i + 1;
  }
  crc_value = crc;
  int seen = crc_bytes;
  if (seen > start)
    crc = crc + 0;
  return crc;
}
)";

// --- expint: triangular nested loops with a helper ---------------------------
const char *ExpintSource = R"(
int expint_terms = 0;
int expint_value = 0;

int expint_inner(int n) {
  int acc = 0;
  int k = 1;
  while (k <= n) {
    acc = acc + n / k;
    k = k + 1;
  }
  return acc;
}

int main() {
  int outer = 1;
  int total = 0;
  while (outer <= 12) {
    int contribution = expint_inner(outer);
    total = total + contribution;
    expint_terms = outer;
    outer = outer + 1;
  }
  expint_value = total;
  return total;
}
)";

// --- fir: finite impulse response filter --------------------------------------
const char *FirSource = R"(
int fir_out[36];
int fir_energy = 0;

int main() {
  int coeff[4];
  coeff[0] = 3;
  coeff[1] = -1;
  coeff[2] = 4;
  coeff[3] = -2;
  int input[40];
  int i = 0;
  while (i < 40) {
    input[i] = unknown() % 64;
    i = i + 1;
  }
  int n = 0;
  while (n < 36) {
    int acc = 0;
    int t = 0;
    while (t < 4) {
      acc = acc + coeff[t] * input[n + t];
      t = t + 1;
    }
    fir_out[n] = acc;
    n = n + 1;
  }
  fir_energy = n;
  return fir_out[0];
}
)";

// --- janne_complex: the classic interacting two-variable loop ----------------
const char *JanneComplexSource = R"(
int janne_a = 0;
int janne_b = 0;
int janne_outer = 0;

int complex_loop(int a, int b) {
  while (a < 30) {
    while (b < a) {
      if (b > 5)
        b = b * 3;
      else
        b = b + 2;
      if (b >= 10 && b <= 12)
        a = a + 10;
      else
        a = a + 1;
    }
    janne_outer = a;
    a = a + 2;
    b = b - 10;
  }
  janne_a = a;
  janne_b = b;
  return 1;
}

int main() {
  int r = complex_loop(1, 1);
  int final_b = janne_b;
  if (final_b > -100)
    r = r + 1;
  return r;
}
)";

// --- matmult: 5x5 matrix product into a global --------------------------------
const char *MatmultSource = R"(
int mat_a[25];
int mat_b[25];
int mat_c[25];
int mat_checksum = 0;

void mat_init() {
  int i = 0;
  while (i < 25) {
    mat_a[i] = i % 7;
    mat_b[i] = (i * 3) % 5;
    i = i + 1;
  }
}

void mat_mul() {
  int row = 0;
  while (row < 5) {
    int col = 0;
    while (col < 5) {
      int acc = 0;
      int k = 0;
      while (k < 5) {
        int av = mat_a[row * 5 + k];
        int bv = mat_b[k * 5 + col];
        acc = acc + av * bv;
        k = k + 1;
      }
      mat_c[row * 5 + col] = acc;
      col = col + 1;
    }
    row = row + 1;
  }
}

int main() {
  mat_init();
  mat_mul();
  int i = 0;
  int sum = 0;
  int peak = 0;
  while (i < 25) {
    sum = sum + mat_c[i];
    int cell = mat_c[i];
    if (cell > peak)
      peak = cell;
    i = i + 1;
  }
  mat_checksum = sum;
  return peak;
}
)";

// --- ndes: rounds of mixing with constant-argument helper calls --------------
const char *NdesSource = R"(
int ndes_state = 0;
int ndes_rounds = 0;

int ndes_mix(int v, int key) {
  int x = v;
  int r = 0;
  while (r < 4) {
    x = (x * 3 + key) % 1024;
    r = r + 1;
  }
  return x;
}

int ndes_permute(int v, int shift) {
  int lo = v % shift;
  int hi = v / shift;
  return lo * (1024 / shift) + hi;
}

int main() {
  int block = unknown() % 1024;
  if (block < 0)
    block = block + 1024;
  int round = 0;
  while (round < 16) {
    block = ndes_mix(block, 113);
    block = ndes_permute(block, 32);
    block = ndes_mix(block, 57);
    block = ndes_permute(block, 8);
    ndes_state = block;
    round = round + 1;
  }
  ndes_rounds = round;
  return block;
}
)";

// --- ns: nested 4-level search with early return -------------------------------
const char *NsSource = R"(
int ns_data[81];
int ns_hits = 0;
int ns_probe = 0;

void ns_fill() {
  int i = 0;
  while (i < 81) {
    ns_data[i] = (i * 5 + 3) % 81;
    i = i + 1;
  }
}

int ns_search(int target) {
  int a = 0;
  while (a < 3) {
    int b = 0;
    while (b < 3) {
      int c = 0;
      while (c < 3) {
        int d = 0;
        while (d < 3) {
          int idx = a * 27 + b * 9 + c * 3 + d;
          ns_probe = idx;
          int candidate = ns_data[idx];
          if (candidate == target) {
            ns_hits = 1;
            return idx;
          }
          d = d + 1;
        }
        c = c + 1;
      }
      b = b + 1;
    }
    a = a + 1;
  }
  return -1;
}

int main() {
  ns_fill();
  int t = unknown() % 81;
  if (t < 0)
    t = t + 81;
  int where = ns_search(t);
  int probes = ns_probe;
  if (probes > where)
    where = where + 0;
  return where;
}
)";

// --- qurt: integer square root via Newton-style iteration ----------------------
const char *QurtSource = R"(
int qurt_root = 0;
int qurt_calls = 0;

int isqrt(int v) {
  int guess = v;
  int iter = 0;
  if (v <= 0)
    return 0;
  if (guess > 1000)
    guess = 1000;
  while (iter < 20 && guess * guess > v) {
    guess = (guess + v / guess) / 2;
    if (guess <= 0)
      guess = 1;
    iter = iter + 1;
  }
  return guess;
}

int main() {
  int total = 0;
  int i = 1;
  while (i <= 10) {
    int r = isqrt(i * i * 3 + 1);
    total = total + r;
    qurt_root = r;
    qurt_calls = i;
    i = i + 1;
  }
  return total;
}
)";

// --- select: k-th smallest via repeated scanning -------------------------------
const char *SelectSource = R"(
int sel_data[20];
int sel_kth = 0;
int sel_scans = 0;

void sel_fill() {
  int i = 0;
  int seed = 5;
  while (i < 20) {
    seed = (seed * 17 + 11) % 97;
    sel_data[i] = seed;
    i = i + 1;
  }
}

int select_kth(int k) {
  int round = 0;
  int best = -1;
  while (round <= k && round < 20) {
    int smallest = 1000;
    int j = 0;
    while (j < 20) {
      if (sel_data[j] > best && sel_data[j] < smallest)
        smallest = sel_data[j];
      j = j + 1;
    }
    best = smallest;
    round = round + 1;
    sel_scans = round;
  }
  sel_kth = best;
  return best;
}

int main() {
  sel_fill();
  int k = unknown() % 20;
  if (k < 0)
    k = k + 20;
  int v = select_kth(k);
  return v;
}
)";

// --- qsort_exam: one counted loop + straight-line epilogue ---------------------
// Deliberately narrowing-friendly: a single loop whose bounds the
// descending iteration recovers exactly, with no later loop that could
// lock in widened loop-invariants — two-phase matches the ⊟-solver at
// every point (the paper's single 0% entry).
const char *QsortExamSource = R"(
int main() {
  int arr[30];
  int i = 0;
  int below = 0;
  while (i < 30) {
    int v = unknown() % 50;
    arr[i] = v;
    if (v < 25)
      below = below + 1;
    i = i + 1;
  }
  int pivot = arr[15];
  int low = arr[0];
  int high = arr[29];
  int span = high - low;
  if (span < 0)
    span = -span;
  if (pivot > high)
    pivot = high;
  return span + pivot;
}
)";

// --- edn: vector dot products and saturation ------------------------------------
const char *EdnSource = R"(
int edn_output[16];
int edn_peak = 0;

int edn_dot(int off, int len) {
  int acc = 0;
  int i = 0;
  while (i < len) {
    acc = acc + (off + i) * (len - i);
    i = i + 1;
  }
  return acc;
}

int main() {
  int n = 0;
  int peak = 0;
  while (n < 16) {
    int v = edn_dot(n, 8);
    if (v > 255)
      v = 255;
    if (v < 0)
      v = 0;
    edn_output[n] = v;
    if (v > peak)
      peak = v;
    n = n + 1;
  }
  edn_peak = peak;
  return peak;
}
)";


// --- prime: trial-division primality over a small range ------------------------
const char *PrimeSource = R"(
int prime_count = 0;
int prime_last = 0;

int is_prime(int n) {
  if (n < 2)
    return 0;
  int d = 2;
  while (d * d <= n) {
    if (n % d == 0)
      return 0;
    d = d + 1;
  }
  return 1;
}

int main() {
  int n = 2;
  int count = 0;
  while (n <= 50) {
    int p = is_prime(n);
    if (p == 1) {
      count = count + 1;
      prime_last = n;
    }
    prime_count = count;
    n = n + 1;
  }
  int seen = prime_last;
  if (seen > 47)
    count = count + 0;
  return count;
}
)";

// --- lcdnum: digit-to-segment table lookups -------------------------------------
const char *LcdnumSource = R"(
int lcd_table[10];
int lcd_shown = 0;

void lcd_init() {
  lcd_table[0] = 63;
  lcd_table[1] = 6;
  lcd_table[2] = 91;
  lcd_table[3] = 79;
  lcd_table[4] = 102;
  lcd_table[5] = 109;
  lcd_table[6] = 125;
  lcd_table[7] = 7;
  lcd_table[8] = 127;
  lcd_table[9] = 111;
  return;
}

int lcd_show(int digit) {
  int d = digit;
  if (d < 0)
    d = 0;
  if (d > 9)
    d = 9;
  int segs = lcd_table[d];
  lcd_shown = d;
  return segs;
}

int main() {
  lcd_init();
  int total = 0;
  int i = 0;
  while (i < 20) {
    int raw = unknown() % 100;
    int segs = lcd_show(raw);
    total = total + segs;
    i = i + 1;
  }
  int last = lcd_shown;
  if (last < 10)
    total = total + 1;
  return total;
}
)";

// --- fdct: fixed-point DCT-like butterfly passes --------------------------------
const char *FdctSource = R"(
int fdct_block[64];
int fdct_passes = 0;

void fdct_fill() {
  int i = 0;
  while (i < 64) {
    int v = unknown() % 256;
    fdct_block[i] = v;
    i = i + 1;
  }
  return;
}

void fdct_pass(int stride) {
  int i = 0;
  while (i < 32) {
    int a = fdct_block[((i * stride % 64) + 64) % 64];
    int b = fdct_block[(((i * stride + 1) % 64) + 64) % 64];
    int sum = (a + b) / 2;
    int diff = (a - b) / 2;
    fdct_block[((i * stride % 64) + 64) % 64] = sum;
    fdct_block[(((i * stride + 1) % 64) + 64) % 64] = diff;
    i = i + 1;
  }
  return;
}

int main() {
  fdct_fill();
  int pass = 0;
  while (pass < 6) {
    fdct_pass(1);
    fdct_pass(8);
    fdct_passes = pass;
    pass = pass + 1;
  }
  int done = fdct_passes;
  if (done < 6)
    done = done + 1;
  return fdct_block[0] + done;
}
)";

// --- duff: unrolled copying with a remainder prologue ----------------------------
const char *DuffSource = R"(
int duff_src[48];
int duff_dst[48];
int duff_copied = 0;

int main() {
  int i = 0;
  while (i < 48) {
    duff_src[i] = unknown() % 500;
    i = i + 1;
  }
  int n = unknown() % 48;
  if (n < 1)
    n = 1;
  int rem = n % 4;
  int j = 0;
  while (j < rem) {
    duff_dst[j] = duff_src[j];
    j = j + 1;
  }
  while (j + 3 < n) {
    duff_dst[j] = duff_src[j];
    duff_dst[j + 1] = duff_src[j + 1];
    duff_dst[j + 2] = duff_src[j + 2];
    duff_dst[j + 3] = duff_src[j + 3];
    j = j + 4;
    duff_copied = j;
  }
  int done = duff_copied;
  if (done > n)
    done = n;
  return duff_dst[0] + done;
}
)";

// --- minver: tiny matrix inversion flavoured pivoting ----------------------------
const char *MinverSource = R"(
int minver_m[9];
int minver_pivots = 0;

void minver_fill() {
  int i = 0;
  int seed = 3;
  while (i < 9) {
    seed = (seed * 7 + 5) % 19;
    minver_m[i] = seed + 1;
    i = i + 1;
  }
  return;
}

int main() {
  minver_fill();
  int det = 1;
  int col = 0;
  while (col < 3) {
    int pivot = minver_m[col * 3 + col];
    if (pivot == 0)
      pivot = 1;
    det = (det * pivot) % 1000;
    int row = 0;
    while (row < 3) {
      if (row != col) {
        int factor = minver_m[row * 3 + col] / pivot;
        int k = 0;
        while (k < 3) {
          minver_m[row * 3 + k] =
              minver_m[row * 3 + k] - factor * minver_m[col * 3 + k];
          k = k + 1;
        }
      }
      row = row + 1;
    }
    minver_pivots = col;
    col = col + 1;
  }
  int piv = minver_pivots;
  if (piv < 3)
    det = det + 1;
  return det;
}
)";

// --- statemate: a state machine driven by inputs ---------------------------------
const char *StatemateSource = R"(
int sm_state = 0;
int sm_transitions = 0;

int sm_step(int state, int event) {
  int next = state;
  if (state == 0) {
    if (event > 0)
      next = 1;
  } else {
    if (state == 1) {
      if (event > 5)
        next = 2;
      else
        next = 0;
    } else {
      if (state == 2) {
        if (event < 0)
          next = 3;
      } else {
        next = 0;
      }
    }
  }
  return next;
}

int main() {
  int state = 0;
  int steps = 0;
  while (steps < 40) {
    int event = unknown() % 10;
    state = sm_step(state, event);
    sm_state = state;
    sm_transitions = steps;
    steps = steps + 1;
  }
  int final_state = sm_state;
  int seen = sm_transitions;
  if (final_state <= 3 && seen < 40)
    steps = steps + 1;
  return steps;
}
)";


// --- adpcm: step-size quantizer with clamped state ------------------------------
const char *AdpcmSource = R"(
int adpcm_prev = 0;
int adpcm_step = 4;

int adpcm_encode(int sample) {
  int diff = sample - adpcm_prev;
  int code = 0;
  if (diff < 0) {
    code = 8;
    diff = -diff;
  }
  int step = adpcm_step;
  if (diff >= step) {
    code = code + 4;
    diff = diff - step;
  }
  if (diff >= step / 2) {
    code = code + 2;
    diff = diff - step / 2;
  }
  int next = adpcm_prev + code;
  if (next > 127)
    next = 127;
  if (next < -128)
    next = -128;
  adpcm_prev = next;
  int nstep = step + code;
  if (nstep > 64)
    nstep = 64;
  if (nstep < 2)
    nstep = 2;
  adpcm_step = nstep;
  return code;
}

int main() {
  int total = 0;
  int i = 0;
  while (i < 30) {
    int s = unknown() % 256;
    int c = adpcm_encode(s);
    total = total + c;
    i = i + 1;
  }
  int prev = adpcm_prev;
  int step = adpcm_step;
  if (prev <= 127 && step <= 64)
    total = total + 1;
  return total;
}
)";

// --- cover: branch-dense case analysis -------------------------------------------
const char *CoverSource = R"(
int cover_hits = 0;

int classify(int v) {
  int r = 0;
  if (v < 10)
    r = 1;
  else if (v < 20)
    r = 2;
  else if (v < 30)
    r = 3;
  else if (v < 40)
    r = 4;
  else if (v < 50)
    r = 5;
  else if (v < 60)
    r = 6;
  else if (v < 70)
    r = 7;
  else if (v < 80)
    r = 8;
  else
    r = 9;
  return r;
}

int main() {
  int buckets = 0;
  int i = 0;
  while (i < 25) {
    int raw = unknown() % 100;
    if (raw < 0)
      raw = raw + 100;
    int c = classify(raw);
    buckets = buckets + c;
    cover_hits = i;
    i = i + 1;
  }
  int seen = cover_hits;
  if (seen < 25)
    buckets = buckets + 1;
  return buckets;
}
)";

// --- compress: run-length flavoured scan ------------------------------------------
const char *CompressSource = R"(
int cmp_input[40];
int cmp_runs = 0;
int cmp_longest = 0;
int cmp_pos = 0;

void cmp_fill() {
  int i = 0;
  while (i < 40) {
    int v = unknown() % 4;
    if (v < 0)
      v = v + 4;
    cmp_input[i] = v;
    i = i + 1;
  }
  return;
}

int main() {
  cmp_fill();
  int runs = 0;
  int longest = 0;
  int i = 0;
  while (i < 40) {
    int current = cmp_input[i];
    cmp_pos = i;
    int len = 1;
    int j = i + 1;
    while (j < 40 && cmp_input[j] == current) {
      len = len + 1;
      j = j + 1;
    }
    if (len > longest)
      longest = len;
    runs = runs + 1;
    cmp_runs = runs;
    cmp_longest = longest;
    i = j;
  }
  int r = cmp_runs;
  int last = cmp_pos;
  if (r <= 40 && last < 40)
    runs = runs + 0;
  return runs;
}
)";

// --- fft: strided butterfly passes with halving spans -----------------------------
const char *FftSource = R"(
int fft_re[32];
int fft_passes = 0;
int fft_filled = 0;

void fft_fill() {
  int i = 0;
  while (i < 32) {
    int v = unknown() % 128;
    fft_re[i] = v;
    fft_filled = i;
    i = i + 1;
  }
  return;
}

int main() {
  fft_fill();
  int span = 16;
  int pass = 0;
  while (span >= 1) {
    int base = 0;
    int limit = 32 - span;
    while (base < limit) {
      int a = fft_re[base];
      int b = fft_re[base + span];
      fft_re[base] = (a + b) / 2;
      fft_re[base + span] = (a - b) / 2;
      base = base + 1;
    }
    span = span / 2;
    pass = pass + 1;
    fft_passes = pass;
  }
  int done = fft_passes;
  int filled = fft_filled;
  if (done >= 5 && filled < 32)
    pass = pass + 0;
  return fft_re[0] + pass;
}
)";

// --- nsichneu: a wide, shallow state network (big CFG) -----------------------------
const char *NsichneuSource = R"(
int net_state = 0;
int net_fired = 0;

int net_step(int state, int input) {
  int next = state;
  if (state == 0 && input > 3)
    next = 1;
  if (state == 0 && input <= 3)
    next = 2;
  if (state == 1 && input > 6)
    next = 3;
  if (state == 1 && input <= 6)
    next = 0;
  if (state == 2 && input > 1)
    next = 4;
  if (state == 2 && input <= 1)
    next = 0;
  if (state == 3)
    next = 5;
  if (state == 4 && input > 8)
    next = 5;
  if (state == 4 && input <= 8)
    next = 2;
  if (state == 5)
    next = 0;
  return next;
}

int main() {
  int state = 0;
  int fired = 0;
  int tick = 0;
  while (tick < 60) {
    int input = unknown() % 10;
    if (input < 0)
      input = input + 10;
    state = net_step(state, input);
    if (state == 5)
      fired = fired + 1;
    net_state = state;
    net_fired = tick;
    tick = tick + 1;
  }
  int observed = net_fired;
  if (observed < 60)
    fired = fired + 1;
  return fired;
}
)";

// --- binary: recursive binary search (context-sensitivity showcase) ----------------
const char *BinarySource = R"(
int bin_data[32];
int bin_depth = 0;

void bin_fill() {
  int i = 0;
  while (i < 32) {
    bin_data[i] = i * 3;
    i = i + 1;
  }
  return;
}

int bin_search(int lo, int hi, int key, int depth) {
  if (lo > hi)
    return -1;
  if (depth > 8)
    return -1;
  int mid = (lo + hi) / 2;
  int v = bin_data[mid];
  if (v == key)
    return mid;
  bin_depth = depth;
  if (v < key) {
    int right = bin_search(mid + 1, hi, key, depth + 1);
    return right;
  }
  int left = bin_search(lo, mid - 1, key, depth + 1);
  return left;
}

int main() {
  bin_fill();
  int key = unknown() % 96;
  if (key < 0)
    key = key + 96;
  int where = bin_search(0, 31, key, 0);
  int deepest = bin_depth;
  if (deepest <= 8)
    where = where + 0;
  return where;
}
)";

} // namespace

const std::vector<WcetBenchmark> &warrow::wcetSuite() {
  static const std::vector<WcetBenchmark> Suite = [] {
    std::vector<WcetBenchmark> S;
    auto Add = [&S](const char *Name, const char *Source,
                    std::vector<int64_t> Inputs) {
      S.push_back({Name, Source, std::move(Inputs)});
    };
    Add("fac", FacSource, {});
    Add("fibcall", FibcallSource, {});
    Add("bs", BsSource, {42});
    Add("insertsort", InsertsortSource,
        {37, 2, 91, 15, 4, 88, 23, 67, 5, 49, 12});
    Add("bsort100", Bsort100Source, {911, 13, 541, 77, 201, 8, 653, 320});
    Add("cnt", CntSource, {});
    Add("crc", CrcSource, {17, 250, 3, 99, 120, 201, 44});
    Add("expint", ExpintSource, {});
    Add("fir", FirSource, {12, 55, 7, 33, 60, 2, 41, 18});
    Add("janne_complex", JanneComplexSource, {});
    Add("matmult", MatmultSource, {});
    Add("ndes", NdesSource, {731});
    Add("ns", NsSource, {40});
    Add("qurt", QurtSource, {});
    Add("select", SelectSource, {7});
    Add("qsort_exam", QsortExamSource, {25, 3, 47, 11, 30, 18, 42, 6});
    Add("edn", EdnSource, {});
    Add("prime", PrimeSource, {});
    Add("lcdnum", LcdnumSource, {4, 77, 19, 3, 98, 55});
    Add("fdct", FdctSource, {120, 7, 99, 240, 16, 33});
    Add("duff", DuffSource, {31, 404, 17, 250, 8});
    Add("minver", MinverSource, {});
    Add("statemate", StatemateSource, {3, 8, -2, 7, 0, 9, -5});
    Add("adpcm", AdpcmSource, {100, 30, -77, 5, 250, 12});
    Add("cover", CoverSource, {15, 84, 3, 66, 49, 91});
    Add("compress", CompressSource, {1, 1, 2, 0, 3, 3, 3, 1});
    Add("fft", FftSource, {90, 12, 55, 31, 77, 8});
    Add("nsichneu", NsichneuSource, {4, 9, 1, 7, 2, 8, 5});
    Add("binary", BinarySource, {42});
    return S;
  }();
  return Suite;
}

const WcetBenchmark *warrow::findWcetBenchmark(const std::string &Name) {
  for (const WcetBenchmark &B : wcetSuite())
    if (B.Name == Name)
      return &B;
  return nullptr;
}
