//===- workloads/edit_generator.h - Program edit sequences ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of *edit sequences* over mini-C programs, the
/// fuzzing companion of incremental re-solving (DESIGN §6i). Where the
/// fuzzer (fuzz_generator.h) emits one random program, this generator
/// emits a base program plus a script of localized edits — change one
/// function's body, change one global's initializer, add a function —
/// with each version's source derivable from the spec and the applied
/// edit prefix alone.
///
/// Every function's text is drawn from its own sub-seeded Rng stream
/// keyed by (Seed, function, body variant), so applying an edit changes
/// exactly the predicted declarations and leaves every other function
/// byte-identical. `predictEdit` states the contract (which functions /
/// globals the diff must report changed); the edit-generator unit tests
/// pin it against `diffSnapshot` fingerprints without running a solver,
/// and the incremental tests fuzz warm-vs-cold σ-equality over it.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_WORKLOADS_EDIT_GENERATOR_H
#define WARROW_WORKLOADS_EDIT_GENERATOR_H

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace warrow {

/// Shape of the base program and the universe edits draw from.
struct EditProgramSpec {
  uint64_t Seed = 1;
  unsigned NumFunctions = 6; ///< Base functions besides main (f0..fN-1).
  unsigned NumGlobals = 3;   ///< g0..gM-1.
  unsigned MaxCallDepth = 3; ///< Layered acyclic call graph depth.
};

/// One localized edit.
enum class EditKind : uint8_t {
  ChangeBody,       ///< Re-draw function Target's body (next variant).
  ChangeGlobalInit, ///< Bump global Target's initializer.
  AddFunction,      ///< Append a leaf function; main gains a call to it.
};

struct EditStep {
  EditKind Kind = EditKind::ChangeBody;
  unsigned Target = 0; ///< Function index / global index; unused for Add.
};

/// The evolving version state: the spec plus an applied edit prefix.
struct EditProgramState {
  std::vector<uint32_t> BodyVariant; ///< Per base+added function.
  std::vector<int64_t> GlobalBump;   ///< Per global, added to the base init.
  unsigned AddedFunctions = 0;
};

/// Initial state for \p Spec (all variants 0, no bumps, no additions).
EditProgramState initialEditState(const EditProgramSpec &Spec);

/// Applies one edit in place.
void applyEdit(const EditProgramSpec &Spec, EditProgramState &State,
               const EditStep &Step);

/// Renders the mini-C source of the version \p State describes.
std::string renderEditProgram(const EditProgramSpec &Spec,
                              const EditProgramState &State);

/// Deterministic edit script of \p NumSteps steps for \p Spec.
std::vector<EditStep> generateEditScript(const EditProgramSpec &Spec,
                                         unsigned NumSteps);

/// What a well-formed edit is allowed to touch, by name.
struct EditPrediction {
  std::unordered_set<std::string> ChangedFuncs; ///< Bodies that may differ.
  std::unordered_set<std::string> ChangedGlobals;
  std::unordered_set<std::string> AddedFuncs; ///< New in the edited version.
};

/// Predicts the effect of applying \p Step to \p State: exactly the named
/// functions/globals change between the two renderings; everything else
/// must fingerprint identically (the edit-generator tests enforce this).
EditPrediction predictEdit(const EditProgramSpec &Spec,
                           const EditProgramState &State,
                           const EditStep &Step);

} // namespace warrow

#endif // WARROW_WORKLOADS_EDIT_GENERATOR_H
