//===- workloads/spec_generator.h - SpecCpu-scale workloads -----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of large mini-C programs standing in for the
/// SpecCpu2006 C programs of the paper's Table 1 (whose sources cannot be
/// redistributed). The generator reproduces the structural drivers of the
/// measurements:
///  - many medium-sized functions in an acyclic call graph (so both the
///    concrete and abstract semantics terminate),
///  - loops with guard-bounded counters (widening/narrowing targets),
///  - globals written under loops and read across functions
///    (side-effecting unknowns),
///  - call sites passing distinct constant arguments (the source of
///    context growth in the context-sensitive configuration; the
///    `ContextVariants` knob controls the ctx/no-ctx unknown ratio, which
///    in the paper ranges from ~1.1x for bzip2 to ~7x for sjeng).
///
/// Per-benchmark profiles are sized so the *context-insensitive* unknown
/// counts land near the paper's Table 1 numbers.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_WORKLOADS_SPEC_GENERATOR_H
#define WARROW_WORKLOADS_SPEC_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace warrow {

/// Shape parameters of one generated program.
struct SpecProfile {
  std::string Name;          ///< Display name ("401.bzip2").
  unsigned NumFunctions = 8; ///< Functions besides main.
  unsigned LoopsPerFunction = 2;
  unsigned CallsPerFunction = 2;
  unsigned NumGlobals = 6;
  /// Distinct constant argument values used across call sites (drives the
  /// number of contexts per function in context-sensitive mode).
  unsigned ContextVariants = 1;
  /// Maximum call-graph depth (bounds solver recursion and concrete call
  /// depth).
  unsigned MaxCallDepth = 8;
  /// Makes the *set of contexts* depend on computed intervals, so the ⊟-
  /// and ▽-solvers encounter different numbers of unknowns (Table 1's
  /// most interesting effect):
  ///   +1  post-loop counters passed as arguments — exact constants under
  ///       ⊟ (one fresh context per call site) but non-constant under ▽
  ///       (one shared top context): ⊟ sees *more* unknowns (456/458);
  ///   -1  calls guarded by reads of narrowable globals — dead under ⊟,
  ///       feasible under ▽: ⊟ sees *fewer* unknowns (470);
  ///    0  neither.
  int ContextDrift = 0;
  uint64_t Seed = 1;
  /// When >= 0, function `f<EditFunction>` gains one extra statement
  /// (`acc = (acc + EditDelta) % 512;`) just before its return. The knob
  /// consumes no randomness, so every *other* function's text is
  /// byte-identical to the unedited program — the single-function "program
  /// edit" the incremental re-solving benchmarks diff against.
  int EditFunction = -1;
  int64_t EditDelta = 0;
  /// Appends this many *pure helper* functions `h0..h<K-1>` — loop-and-
  /// parameter arithmetic only, no global reads or writes, no calls —
  /// each invoked once from main after the driver loop. Their helper
  /// bodies draw from a dedicated Rng stream and main's driver loop is
  /// emitted before the helper calls, so a profile with `PureHelpers == 0`
  /// renders byte-identically to one generated before the knob existed.
  /// Editing a helper (`EditFunction = NumFunctions + I` targets `h<I>`)
  /// produces the smallest possible incremental cone: the helper itself
  /// plus main's post-loop suffix, never the global side-effect fan-out.
  unsigned PureHelpers = 0;
};

/// Emits the program's mini-C source (parse with `parseProgram`).
std::string generateSpecProgram(const SpecProfile &Profile);

/// Profiles mirroring the seven SpecCpu2006 rows of Table 1.
const std::vector<SpecProfile> &specSuite();

/// Looks up a profile by name (null if absent).
const SpecProfile *findSpecProfile(const std::string &Name);

} // namespace warrow

#endif // WARROW_WORKLOADS_SPEC_GENERATOR_H
