//===- workloads/wcet_suite.h - Mälardalen-style benchmarks -----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written mini-C analogues of the Mälardalen WCET benchmark suite
/// used by the paper's Figure 7 (the originals are C programs fed to
/// Goblint through CIL; we reproduce their loop idioms — nested dependent
/// loops, sentinel searches, triangular iteration, accumulators and flag
/// globals — in the mini-C substrate). One benchmark (`qsort_exam`) is
/// deliberately structured so that the classical two-phase solver already
/// attains the ⊟ result, matching the paper's single 0%-improvement
/// entry.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_WORKLOADS_WCET_SUITE_H
#define WARROW_WORKLOADS_WCET_SUITE_H

#include <cstdint>
#include <string>
#include <vector>

namespace warrow {

/// One benchmark program.
struct WcetBenchmark {
  std::string Name;
  std::string Source;
  /// Input tape for concrete soundness runs (`unknown()` values).
  std::vector<int64_t> Inputs;

  /// Number of source lines (the size metric Figure 7 sorts by).
  int lineCount() const;
};

/// The full suite, in no particular order.
const std::vector<WcetBenchmark> &wcetSuite();

/// Looks up a benchmark by name (null if absent).
const WcetBenchmark *findWcetBenchmark(const std::string &Name);

} // namespace warrow

#endif // WARROW_WORKLOADS_WCET_SUITE_H
