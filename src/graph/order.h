//===- graph/order.h - Condensation-consistent variable orders --*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Priority orders derived from the condensation of the dependency
/// graph. SW (Fig. 4) is parameterized by a fixed total order on the
/// unknowns; an order is *condensation-consistent* when every member of
/// component c precedes every member of component c' for c < c' in the
/// topological numbering. Under such an order sequential SW stabilizes
/// each component before touching its successors, which is exactly the
/// schedule the SCC-parallel solver runs concurrently — making the two
/// bit-identical (see solvers/parallel_sw.h and DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_GRAPH_ORDER_H
#define WARROW_GRAPH_ORDER_H

#include "graph/scc.h"

#include <cstdint>
#include <vector>

namespace warrow {

/// The canonical condensation-consistent order: variables sorted by
/// (topological component number, variable id). Returns Rank where
/// Rank[v] is v's priority — smaller ranks are evaluated first.
inline std::vector<uint32_t> topologicalRank(const Condensation &Cond) {
  std::vector<uint32_t> Rank(Cond.CompOf.size());
  uint32_t Next = 0;
  for (CompId Comp = 0; Comp < Cond.numComponents(); ++Comp)
    for (uint32_t V : Cond.Members[Comp]) // Members are ascending.
      Rank[V] = Next++;
  return Rank;
}

} // namespace warrow

#endif // WARROW_GRAPH_ORDER_H
