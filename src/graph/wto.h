//===- graph/wto.h - Weak topological ordering ------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Bourdoncle-style weak topological ordering (WTO) of a dependency
/// graph: a hierarchical ordering of the nodes where every cycle is
/// contained in a *component* headed by its entry node, and nested
/// cycles form nested components. Section 4 of the paper cites exactly
/// this structure as the ordering the structured solvers want: unknowns
/// of inner loops get smaller priorities and stabilize first.
///
/// Construction follows Bourdoncle's recursive decomposition: compute
/// the SCCs; emit trivial components directly in topological order; for
/// a nontrivial component, emit its head, remove the head, and recurse
/// on the remainder (which breaks the component's cycles through the
/// head). Recursion depth equals the loop-nesting depth, not the graph
/// size, so the implementation is safe for very large, shallowly nested
/// systems.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_GRAPH_WTO_H
#define WARROW_GRAPH_WTO_H

#include "graph/dependency_graph.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warrow {

/// One position of a weak topological ordering.
struct WtoEntry {
  /// The node at this position.
  uint32_t Node;
  /// Component nesting depth: 0 for top-level positions, +1 inside each
  /// enclosing component.
  uint32_t Depth;
  /// True if this node heads a (cyclic) component; the component body is
  /// the following run of entries with strictly larger depth.
  bool IsHead;
};

/// Computes a weak topological ordering of \p G. The head of every
/// component is its smallest node id, matching the convention that
/// clients number loop heads before loop bodies (dense_system.h).
std::vector<WtoEntry> weakTopologicalOrder(const DepGraph &G);

/// Renders a WTO in Bourdoncle's parenthesized notation, e.g.
/// `0 (1 2 (3 4) 5) 6` — heads open a parenthesis. For tests and debug
/// output.
std::string wtoToString(const std::vector<WtoEntry> &Wto);

} // namespace warrow

#endif // WARROW_GRAPH_WTO_H
