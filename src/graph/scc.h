//===- graph/scc.h - Tarjan SCC and condensation DAG ------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly connected components (iterative Tarjan) and the condensation
/// DAG of a dependency graph. The condensation is the schedule driving
/// the parallel structured solvers (solvers/parallel_sw.h): components
/// with no unfinished predecessors are "ready" and independent ready
/// components can be solved concurrently without changing any result —
/// within a component the solvers keep the exact sequential iteration
/// order, and across components all reads go to already-final values.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_GRAPH_SCC_H
#define WARROW_GRAPH_SCC_H

#include "graph/dependency_graph.h"

#include <cstdint>
#include <vector>

namespace warrow {

/// Id of a strongly connected component.
using CompId = uint32_t;

/// The condensation of a `DepGraph`: its SCCs plus the induced DAG.
struct Condensation {
  /// Component of each node.
  std::vector<CompId> CompOf;
  /// Members of each component, ascending node ids. Component ids are
  /// numbered in topological order of the condensation: every edge of
  /// `CompSucc` goes from a smaller to a strictly larger id.
  std::vector<std::vector<uint32_t>> Members;
  /// Successor components (deduplicated, no self-edges).
  std::vector<std::vector<CompId>> CompSucc;
  /// Number of distinct predecessor components feeding each component —
  /// the ready counts consumed by the parallel scheduler.
  std::vector<uint32_t> PredCount;
  /// True for components that need fixpoint iteration: more than one
  /// member, or a single member with a self-loop.
  std::vector<bool> Cyclic;

  size_t numComponents() const { return Members.size(); }
};

/// Computes the SCCs of \p G (iterative Tarjan, safe for millions of
/// nodes) and returns the condensation with components numbered in
/// topological order.
Condensation condense(const DepGraph &G);

} // namespace warrow

#endif // WARROW_GRAPH_SCC_H
