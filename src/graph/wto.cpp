//===- graph/wto.cpp - Weak topological ordering -------------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/wto.h"

#include "graph/scc.h"

#include <algorithm>
#include <cassert>

using namespace warrow;

namespace {

/// Builds the subgraph of \p G induced by \p Nodes (ascending), with
/// nodes renamed to `0 .. Nodes.size()-1` in that order.
DepGraph inducedSubgraph(const DepGraph &G, const std::vector<uint32_t> &Nodes,
                         std::vector<uint32_t> &LocalOf) {
  DepGraph Sub;
  Sub.Succ.resize(Nodes.size());
  for (uint32_t Local = 0; Local < Nodes.size(); ++Local)
    LocalOf[Nodes[Local]] = Local;
  for (uint32_t Local = 0; Local < Nodes.size(); ++Local)
    for (uint32_t W : G.Succ[Nodes[Local]]) {
      // Membership test: W is in the subgraph iff LocalOf maps it back.
      auto It = std::lower_bound(Nodes.begin(), Nodes.end(), W);
      if (It != Nodes.end() && *It == W)
        Sub.addEdge(Local, LocalOf[W]);
    }
  Sub.finalize();
  return Sub;
}

/// Emits the WTO of the subgraph induced by \p Nodes at \p Depth.
/// Recursion depth equals loop-nesting depth: each level removes the
/// head of every cyclic component before descending.
void decompose(const DepGraph &G, const std::vector<uint32_t> &Nodes,
               uint32_t Depth, std::vector<uint32_t> &LocalOf,
               std::vector<WtoEntry> &Out) {
  if (Nodes.empty())
    return;
  DepGraph Sub = inducedSubgraph(G, Nodes, LocalOf);
  Condensation C = condense(Sub);
  // Component ids are topological, so a plain id sweep emits every
  // component after all components feeding it.
  for (CompId Id = 0; Id < C.numComponents(); ++Id) {
    const std::vector<uint32_t> &Local = C.Members[Id];
    if (!C.Cyclic[Id]) {
      assert(Local.size() == 1 && "acyclic component with several nodes");
      Out.push_back({Nodes[Local[0]], Depth, false});
      continue;
    }
    // Head = smallest node id (members are ascending), per the loop-
    // heads-first numbering convention.
    std::vector<uint32_t> Global;
    Global.reserve(Local.size());
    for (uint32_t L : Local)
      Global.push_back(Nodes[L]);
    Out.push_back({Global.front(), Depth, true});
    Global.erase(Global.begin());
    decompose(G, Global, Depth + 1, LocalOf, Out);
  }
}

} // namespace

std::vector<WtoEntry> warrow::weakTopologicalOrder(const DepGraph &G) {
  std::vector<uint32_t> All(G.size());
  for (uint32_t V = 0; V < G.size(); ++V)
    All[V] = V;
  std::vector<uint32_t> LocalOf(G.size(), 0); // Scratch, reused per level.
  std::vector<WtoEntry> Out;
  Out.reserve(G.size());
  decompose(G, All, 0, LocalOf, Out);
  assert(Out.size() == G.size() && "WTO must enumerate every node once");
  return Out;
}

std::string warrow::wtoToString(const std::vector<WtoEntry> &Wto) {
  std::string S;
  uint32_t Depth = 0;
  auto CloseTo = [&](uint32_t Target) {
    while (Depth > Target) {
      S += ')';
      --Depth;
    }
  };
  for (const WtoEntry &E : Wto) {
    CloseTo(E.Depth);
    if (!S.empty() && S.back() != '(')
      S += ' ';
    if (E.IsHead) {
      S += '(';
      ++Depth;
    }
    S += std::to_string(E.Node);
  }
  CloseTo(0);
  return S;
}
