//===- graph/scc.cpp - Tarjan SCC and condensation DAG -------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/scc.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace warrow;

namespace {

constexpr uint32_t Unvisited = std::numeric_limits<uint32_t>::max();

/// One explicit DFS frame: the node and the index of the next successor
/// edge to examine.
struct Frame {
  uint32_t Node;
  uint32_t NextEdge;
};

} // namespace

Condensation warrow::condense(const DepGraph &G) {
  const size_t N = G.size();
  Condensation C;
  C.CompOf.assign(N, Unvisited);

  // Iterative Tarjan. Components complete in reverse topological order;
  // ids are flipped afterwards so that edges go small -> large.
  std::vector<uint32_t> Index(N, Unvisited);
  std::vector<uint32_t> Lowlink(N, 0);
  std::vector<char> OnStack(N, 0);
  std::vector<uint32_t> Stack; // Tarjan's node stack.
  std::vector<Frame> Dfs;      // Explicit recursion stack.
  Stack.reserve(N);
  uint32_t NextIndex = 0;
  uint32_t NumComps = 0;

  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    Dfs.push_back({Root, 0});
    Index[Root] = Lowlink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;
    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      const auto &Succ = G.Succ[F.Node];
      if (F.NextEdge < Succ.size()) {
        uint32_t W = Succ[F.NextEdge++];
        if (Index[W] == Unvisited) {
          Index[W] = Lowlink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = 1;
          Dfs.push_back({W, 0});
        } else if (OnStack[W]) {
          Lowlink[F.Node] = std::min(Lowlink[F.Node], Index[W]);
        }
        continue;
      }
      // All successors done: maybe emit a component, then return to the
      // parent frame, folding our lowlink into it.
      uint32_t V = F.Node;
      Dfs.pop_back();
      if (!Dfs.empty())
        Lowlink[Dfs.back().Node] = std::min(Lowlink[Dfs.back().Node],
                                            Lowlink[V]);
      if (Lowlink[V] == Index[V]) {
        CompId Id = NumComps++;
        for (;;) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          C.CompOf[W] = Id;
          if (W == V)
            break;
        }
      }
    }
  }

  // Flip to topological numbering (Tarjan completes successors first).
  for (uint32_t V = 0; V < N; ++V)
    C.CompOf[V] = NumComps - 1 - C.CompOf[V];

  C.Members.assign(NumComps, {});
  for (uint32_t V = 0; V < N; ++V)
    C.Members[C.CompOf[V]].push_back(V); // Ascending: V grows.

  // Induced DAG: dedupe per source component, drop intra-component edges.
  C.CompSucc.assign(NumComps, {});
  C.PredCount.assign(NumComps, 0);
  C.Cyclic.assign(NumComps, false);
  for (CompId Id = 0; Id < NumComps; ++Id) {
    if (C.Members[Id].size() > 1)
      C.Cyclic[Id] = true;
    for (uint32_t V : C.Members[Id])
      for (uint32_t W : G.Succ[V]) {
        CompId To = C.CompOf[W];
        if (To == Id) {
          C.Cyclic[Id] = true; // Self-loop or multi-node cycle.
          continue;
        }
        assert(To > Id && "condensation edge against topological order");
        C.CompSucc[Id].push_back(To);
      }
    auto &S = C.CompSucc[Id];
    std::sort(S.begin(), S.end());
    S.erase(std::unique(S.begin(), S.end()), S.end());
    for (CompId To : S)
      ++C.PredCount[To];
  }
  return C;
}
