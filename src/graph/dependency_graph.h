//===- graph/dependency_graph.h - Static dependency graphs ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static dependency graph of a finite equation system. An edge
/// `y -> x` records that equation x declares y among its dependencies
/// (`y ∈ dep_x`), i.e. that information flows from y to x. The graph is
/// the input to the SCC/condensation machinery (graph/scc.h) and the weak
/// topological ordering (graph/wto.h) that drive the parallel structured
/// solvers: a component may be solved once all components it reads from
/// have stabilized.
///
/// Extraction only looks at the *declared* dependency sets. Since the
/// worklist solvers already require `dep_x` to be a superset of the
/// unknowns actually read (eqsys/dense_system.h), every runtime read is
/// covered by an edge, which is what makes the condensation schedule
/// race-free.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_GRAPH_DEPENDENCY_GRAPH_H
#define WARROW_GRAPH_DEPENDENCY_GRAPH_H

#include "eqsys/dense_system.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace warrow {

/// A directed graph over dense node ids `0 .. size()-1`, stored as
/// forward adjacency (successor) lists.
struct DepGraph {
  /// Succ[y] = ascending, deduplicated successors of y (edges y -> x).
  std::vector<std::vector<uint32_t>> Succ;

  size_t size() const { return Succ.size(); }

  /// Adds the edge \p From -> \p To (duplicates removed by `finalize`).
  void addEdge(uint32_t From, uint32_t To) { Succ[From].push_back(To); }

  /// Sorts and dedupes all adjacency lists (idempotent).
  void finalize() {
    for (auto &S : Succ) {
      std::sort(S.begin(), S.end());
      S.erase(std::unique(S.begin(), S.end()), S.end());
    }
  }

  /// True if the edge \p From -> \p To exists (after `finalize`).
  bool hasEdge(uint32_t From, uint32_t To) const {
    const auto &S = Succ[From];
    return std::binary_search(S.begin(), S.end(), To);
  }
};

/// Extracts the static dependency graph of \p System: one node per
/// unknown, an edge `y -> x` for every `y ∈ dep_x`. Self-edges are kept —
/// they mark trivial components that still need fixpoint iteration.
template <typename D>
DepGraph extractDependencyGraph(const DenseSystem<D> &System) {
  DepGraph G;
  G.Succ.resize(System.size());
  for (Var X = 0; X < System.size(); ++X)
    for (Var Y : System.deps(X))
      G.addEdge(Y, X);
  G.finalize();
  return G;
}

} // namespace warrow

#endif // WARROW_GRAPH_DEPENDENCY_GRAPH_H
