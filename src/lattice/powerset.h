//===- lattice/powerset.h - Finite powerset domain --------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Powerset lattice over an arbitrary element type, ordered by inclusion.
/// There is no universe: `top()` is not provided, so the type models
/// `JoinSemiLattice` + `WidenNarrow` only. Since ascending chains are
/// bounded by the (finitely many) elements ever inserted, join works as a
/// widening for the use cases here (e.g. sets of observed calling contexts
/// and reaching-definition style analyses in tests), and an optional
/// cardinality-bounded widening jumps to a designated "saturated" marker.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_POWERSET_H
#define WARROW_LATTICE_POWERSET_H

#include "support/hash.h"

#include <algorithm>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

namespace warrow {

/// A sorted-vector set lattice (deterministic iteration order).
template <typename T> class PowerSet {
public:
  PowerSet() = default;

  static PowerSet bot() { return PowerSet(); }
  static PowerSet singleton(T V) {
    PowerSet S;
    S.Items.push_back(std::move(V));
    return S;
  }
  static PowerSet of(std::vector<T> Values) {
    PowerSet S;
    S.Items = std::move(Values);
    std::sort(S.Items.begin(), S.Items.end());
    S.Items.erase(std::unique(S.Items.begin(), S.Items.end()),
                  S.Items.end());
    return S;
  }

  bool isBot() const { return Items.empty(); }
  size_t size() const { return Items.size(); }
  const std::vector<T> &items() const { return Items; }

  bool contains(const T &V) const {
    return std::binary_search(Items.begin(), Items.end(), V);
  }

  bool leq(const PowerSet &Other) const {
    return std::includes(Other.Items.begin(), Other.Items.end(),
                         Items.begin(), Items.end());
  }

  PowerSet join(const PowerSet &Other) const {
    PowerSet R;
    std::set_union(Items.begin(), Items.end(), Other.Items.begin(),
                   Other.Items.end(), std::back_inserter(R.Items));
    return R;
  }

  PowerSet meet(const PowerSet &Other) const {
    PowerSet R;
    std::set_intersection(Items.begin(), Items.end(), Other.Items.begin(),
                          Other.Items.end(), std::back_inserter(R.Items));
    return R;
  }

  bool operator==(const PowerSet &Other) const {
    return Items == Other.Items;
  }

  /// Join doubles as widening: chains are finite when the element universe
  /// encountered during a run is finite (the situation of Theorems 2-4).
  PowerSet widen(const PowerSet &Other) const { return join(Other); }
  PowerSet narrow(const PowerSet &Other) const { return Other; }

  std::string str() const {
    std::string Out = "{";
    for (size_t I = 0; I < Items.size(); ++I) {
      if (I)
        Out += ",";
      if constexpr (std::is_arithmetic_v<T>)
        Out += std::to_string(Items[I]);
      else
        Out += "?";
    }
    return Out + "}";
  }

  size_t hashValue() const {
    size_t Seed = Items.size();
    for (const T &V : Items)
      hashCombine(Seed, std::hash<T>{}(V));
    return Seed;
  }

private:
  std::vector<T> Items; // Sorted, unique.
};

} // namespace warrow

template <typename T> struct std::hash<warrow::PowerSet<T>> {
  size_t operator()(const warrow::PowerSet<T> &S) const {
    return S.hashValue();
  }
};

#endif // WARROW_LATTICE_POWERSET_H
