//===- lattice/dbm.cpp - Difference-bound matrices ----------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lattice/dbm.h"

#include "support/hash.h"

#include <algorithm>
#include <cassert>

using namespace warrow;

namespace {

/// Path-weight addition: entries are finite or +inf, never -inf, so this
/// is total without touching Bound's opposite-infinity assertions.
inline Bound addWeights(Bound A, Bound B) {
  if (A.isPosInf() || B.isPosInf())
    return Bound::posInf();
  return Bound(satAdd64(A.raw(), B.raw()));
}

} // namespace

Dbm::Dbm(size_t NumVars)
    : Dim(NumVars + 1), Closed(true),
      M(Dim * Dim, Bound::posInf()) {
  for (size_t I = 0; I < Dim; ++I)
    M[I * Dim + I] = Bound(0);
}

bool Dbm::tighten(size_t I, size_t J, Bound B) {
  Bound &Slot = M[I * Dim + J];
  if (B >= Slot)
    return false;
  Slot = B;
  return true;
}

bool Dbm::close() {
  // Floyd–Warshall with the k loop outermost; for each k the inner sweep
  // walks row i and row k left to right, so all accesses are contiguous
  // (row-major) and the row-k pivot stays hot in cache.
  for (size_t K = 0; K < Dim; ++K) {
    const Bound *RowK = &M[K * Dim];
    for (size_t I = 0; I < Dim; ++I) {
      Bound Ik = M[I * Dim + K];
      if (Ik.isPosInf())
        continue;
      Bound *RowI = &M[I * Dim];
      for (size_t J = 0; J < Dim; ++J) {
        Bound Via = addWeights(Ik, RowK[J]);
        if (Via < RowI[J])
          RowI[J] = Via;
      }
    }
  }
  for (size_t I = 0; I < Dim; ++I) {
    if (M[I * Dim + I] < Bound(0))
      return false; // Negative cycle: infeasible.
    M[I * Dim + I] = Bound(0);
  }
  Closed = true;
  return true;
}

bool Dbm::closeAfterTighten(size_t A, size_t B) {
  // The only new shortest paths route through the tightened arc A -> B:
  // M[i][j] <- min(M[i][j], M[i][A] + M[A][B] + M[B][j]). Two O(dim²)
  // row-contiguous sweeps (first update column-ish via row A, then rows).
  Bound W = M[A * Dim + B];
  if (W.isPosInf()) {
    Closed = true;
    return true; // "Tightened" to nothing.
  }
  const Bound *RowB = &M[B * Dim];
  for (size_t I = 0; I < Dim; ++I) {
    Bound Ia = M[I * Dim + A];
    if (Ia.isPosInf())
      continue;
    Bound Base = addWeights(Ia, W);
    if (Base.isPosInf())
      continue;
    Bound *RowI = &M[I * Dim];
    for (size_t J = 0; J < Dim; ++J) {
      Bound Via = addWeights(Base, RowB[J]);
      if (Via < RowI[J])
        RowI[J] = Via;
    }
  }
  for (size_t I = 0; I < Dim; ++I) {
    if (M[I * Dim + I] < Bound(0))
      return false;
    M[I * Dim + I] = Bound(0);
  }
  Closed = true;
  return true;
}

void Dbm::forget(size_t I) {
  assert(I > 0 && I < Dim && "cannot forget the zero variable");
  for (size_t J = 0; J < Dim; ++J) {
    M[I * Dim + J] = Bound::posInf();
    M[J * Dim + I] = Bound::posInf();
  }
  M[I * Dim + I] = Bound(0);
  // Dropping constraints cannot create new shortest paths elsewhere, so a
  // closed matrix stays closed.
}

Interval Dbm::bounds(size_t I) const { return diffBounds(I, 0); }

Interval Dbm::diffBounds(size_t I, size_t J) const {
  Bound Hi = at(I, J);
  Bound Lo = -at(J, I);
  if (Lo > Hi)
    return Interval::bot(); // Only on inconsistent (un-closed) input.
  return Interval::make(Lo, Hi);
}

bool Dbm::constrainInterval(size_t I, const Interval &V) {
  assert(!V.isBot() && "constraining to the empty interval");
  assert(Closed && "incremental closure needs a closed base");
  if (!V.hi().isPosInf() && tighten(I, 0, V.hi()) && !closeAfterTighten(I, 0))
    return false;
  if (!V.lo().isNegInf() && tighten(0, I, -V.lo()) && !closeAfterTighten(0, I))
    return false;
  Closed = true;
  return true;
}

bool Dbm::pointwiseLeq(const Dbm &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  for (size_t I = 0; I < M.size(); ++I)
    if (!(M[I] <= Other.M[I]))
      return false;
  return true;
}

Dbm Dbm::pointwiseMax(const Dbm &A, const Dbm &B) {
  assert(A.Dim == B.Dim && "dimension mismatch");
  Dbm R(A.Dim - 1);
  for (size_t I = 0; I < R.M.size(); ++I)
    R.M[I] = max(A.M[I], B.M[I]);
  // The pointwise max of two closed matrices is closed.
  R.Closed = A.Closed && B.Closed;
  return R;
}

Dbm Dbm::pointwiseMin(const Dbm &A, const Dbm &B) {
  assert(A.Dim == B.Dim && "dimension mismatch");
  Dbm R(A.Dim - 1);
  for (size_t I = 0; I < R.M.size(); ++I)
    R.M[I] = min(A.M[I], B.M[I]);
  R.Closed = false;
  return R;
}

Dbm Dbm::widen(const Dbm &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  Dbm R(Dim - 1);
  for (size_t I = 0; I < M.size(); ++I)
    R.M[I] = Other.M[I] <= M[I] ? M[I] : Bound::posInf();
  R.Closed = false; // Deliberately left unclosed (termination).
  return R;
}

Dbm Dbm::widenWithThresholds(const Dbm &Other,
                             const std::vector<int64_t> &Thresholds) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  Dbm R(Dim - 1);
  for (size_t I = 0; I < M.size(); ++I) {
    if (Other.M[I] <= M[I]) {
      R.M[I] = M[I];
      continue;
    }
    Bound Snapped = Bound::posInf();
    if (Other.M[I].isFinite()) {
      auto It = std::lower_bound(Thresholds.begin(), Thresholds.end(),
                                 Other.M[I].finite());
      if (It != Thresholds.end())
        Snapped = Bound(*It);
    }
    R.M[I] = Snapped;
  }
  R.Closed = false;
  return R;
}

Dbm Dbm::narrow(const Dbm &Other) const {
  assert(Dim == Other.Dim && "dimension mismatch");
  Dbm R(Dim - 1);
  for (size_t I = 0; I < M.size(); ++I)
    R.M[I] = M[I].isPosInf() ? Other.M[I] : M[I];
  R.Closed = false;
  return R;
}

std::string Dbm::str() const {
  std::string Out = "[";
  bool First = true;
  auto Name = [](size_t I) { return "x" + std::to_string(I); };
  for (size_t I = 0; I < Dim; ++I) {
    for (size_t J = 0; J < Dim; ++J) {
      if (I == J || at(I, J).isPosInf())
        continue;
      if (!First)
        Out += ", ";
      First = false;
      if (J == 0)
        Out += Name(I) + "<=" + at(I, J).str();
      else if (I == 0)
        Out += "-" + Name(J) + "<=" + at(I, J).str();
      else
        Out += Name(I) + "-" + Name(J) + "<=" + at(I, J).str();
    }
  }
  return Out + "]";
}

size_t Dbm::hashValue() const {
  size_t Seed = Dim;
  for (Bound B : M)
    hashCombine(Seed, static_cast<size_t>(B.raw()));
  return Seed;
}
