//===- lattice/lattice.h - Lattice concepts ---------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concepts describing the algebraic structures the solvers operate on.
///
/// A domain type `D` models `JoinSemiLattice` by providing:
///   - `static D bot()`                      least element
///   - `D join(const D &) const`             least upper bound
///   - `bool leq(const D &) const`           partial order
///   - `operator==`
/// `Lattice` additionally requires `meet`. `WidenNarrow` requires the
/// acceleration operators of Cousot & Cousot:
///   - `D widen(const D &) const`   with a ⊑ b  ==>  b ⊑ a.widen(b)
///   - `D narrow(const D &) const`  with b ⊑ a  ==>  b ⊑ a.narrow(b) ⊑ a
///
/// (The paper's widening law is `a ⊔ b ⊑ a ▽ b`; all our domains satisfy
/// it, and the domain law tests check it on random samples.)
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_LATTICE_H
#define WARROW_LATTICE_LATTICE_H

#include <concepts>
#include <string>

namespace warrow {

template <typename D>
concept JoinSemiLattice = requires(const D &A, const D &B) {
  { D::bot() } -> std::convertible_to<D>;
  { A.join(B) } -> std::convertible_to<D>;
  { A.leq(B) } -> std::convertible_to<bool>;
  { A == B } -> std::convertible_to<bool>;
};

template <typename D>
concept Lattice = JoinSemiLattice<D> && requires(const D &A, const D &B) {
  { D::top() } -> std::convertible_to<D>;
  { A.meet(B) } -> std::convertible_to<D>;
};

template <typename D>
concept WidenNarrow = JoinSemiLattice<D> && requires(const D &A, const D &B) {
  { A.widen(B) } -> std::convertible_to<D>;
  { A.narrow(B) } -> std::convertible_to<D>;
};

/// Domains used in diagnostics/tables also render themselves.
template <typename D>
concept Printable = requires(const D &A) {
  { A.str() } -> std::convertible_to<std::string>;
};

/// Convenience: strict order check `A ⊏ B`.
template <JoinSemiLattice D> bool strictlyLess(const D &A, const D &B) {
  return A.leq(B) && !(A == B);
}

} // namespace warrow

#endif // WARROW_LATTICE_LATTICE_H
