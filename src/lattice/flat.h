//===- lattice/flat.h - Flat (constant-propagation) lattice -----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat lattice over an arbitrary value type: bot < {v} < top. Used by
/// the context-sensitive analysis, whose calling contexts record the
/// *flat-constant* abstraction of actual parameters (the "non-interval
/// values of locals" of the paper's Table 1 setup).
///
/// Flat lattices have height 2, so widening/narrowing are simply join/old
/// (both trivially satisfy the laws).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_FLAT_H
#define WARROW_LATTICE_FLAT_H

#include "support/hash.h"

#include <cassert>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>

namespace warrow {

/// bot < constant(v) < top, for any equality-comparable, hashable T.
template <typename T> class Flat {
public:
  /// Default: bottom.
  Flat() : Kind(KBot) {}

  static Flat bot() { return Flat(); }
  static Flat top() {
    Flat F;
    F.Kind = KTop;
    return F;
  }
  static Flat constant(T V) {
    Flat F;
    F.Kind = KConst;
    F.Value = std::move(V);
    return F;
  }

  bool isBot() const { return Kind == KBot; }
  bool isTop() const { return Kind == KTop; }
  bool isConstant() const { return Kind == KConst; }
  const T &constantValue() const {
    assert(isConstant() && "no constant payload");
    return *Value;
  }

  bool leq(const Flat &Other) const {
    if (Kind == KBot || Other.Kind == KTop)
      return true;
    if (Other.Kind == KBot || Kind == KTop)
      return false;
    return *Value == *Other.Value;
  }

  Flat join(const Flat &Other) const {
    if (Kind == KBot)
      return Other;
    if (Other.Kind == KBot)
      return *this;
    if (Kind == KConst && Other.Kind == KConst && *Value == *Other.Value)
      return *this;
    return top();
  }

  Flat meet(const Flat &Other) const {
    if (Kind == KTop)
      return Other;
    if (Other.Kind == KTop)
      return *this;
    if (Kind == KConst && Other.Kind == KConst && *Value == *Other.Value)
      return *this;
    return bot();
  }

  bool operator==(const Flat &Other) const {
    if (Kind != Other.Kind)
      return false;
    if (Kind != KConst)
      return true;
    return *Value == *Other.Value;
  }

  /// Finite height: join is already a widening.
  Flat widen(const Flat &Other) const { return join(Other); }
  /// Finite height: keeping the old value is a (trivial) narrowing; we use
  /// the new one, which is the most precise legal choice.
  Flat narrow(const Flat &Other) const { return Other; }

  std::string str() const {
    if (Kind == KBot)
      return "bot";
    if (Kind == KTop)
      return "top";
    if constexpr (std::is_arithmetic_v<T>)
      return std::to_string(*Value);
    else
      return "const";
  }

  size_t hashValue() const {
    if (Kind == KBot)
      return 0x62; // 'b'
    if (Kind == KTop)
      return 0x74; // 't'
    return hashAll(*Value);
  }

private:
  enum KindTy { KBot, KConst, KTop };
  KindTy Kind;
  std::optional<T> Value;
};

} // namespace warrow

template <typename T> struct std::hash<warrow::Flat<T>> {
  size_t operator()(const warrow::Flat<T> &F) const { return F.hashValue(); }
};

#endif // WARROW_LATTICE_FLAT_H
