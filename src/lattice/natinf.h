//===- lattice/natinf.h - Naturals extended with infinity -------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lattice `N ∪ {∞}` of non-negative integers with the natural order,
/// exactly as used by the paper's Examples 1-4:
///
///   widening:   a ▽ b = a  if b <= a,  ∞ otherwise
///   narrowing:  a △ b = b  if a = ∞,   a otherwise      (for b <= a)
///
/// Join is max, meet is min. This tiny domain is what makes plain
/// round-robin and worklist iteration diverge under ⊟, so it is kept
/// faithful to the paper rather than generalized.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_NATINF_H
#define WARROW_LATTICE_NATINF_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>

namespace warrow {

/// A natural number or infinity, ordered by <=; a complete lattice with
/// bottom 0 and top ∞.
class NatInf {
public:
  /// Bottom: 0.
  NatInf() : Value(0) {}
  explicit NatInf(uint64_t V) : Value(V) {
    assert(V != InfRep && "finite payload collides with infinity encoding");
  }

  static NatInf bot() { return NatInf(); }
  static NatInf top() { return inf(); }
  static NatInf inf() {
    NatInf N;
    N.Value = InfRep;
    return N;
  }

  bool isInf() const { return Value == InfRep; }
  uint64_t finite() const {
    assert(!isInf() && "infinite NatInf has no finite payload");
    return Value;
  }

  bool leq(const NatInf &Other) const { return Value <= Other.Value; }
  NatInf join(const NatInf &Other) const {
    return fromRep(Value >= Other.Value ? Value : Other.Value);
  }
  NatInf meet(const NatInf &Other) const {
    return fromRep(Value <= Other.Value ? Value : Other.Value);
  }
  bool operator==(const NatInf &Other) const { return Value == Other.Value; }

  /// a ▽ b = a if b <= a else ∞ (paper, Example 1).
  NatInf widen(const NatInf &Other) const {
    return Other.leq(*this) ? *this : inf();
  }
  /// a △ b = b if a = ∞ else a (paper, Example 1; defined for b <= a).
  NatInf narrow(const NatInf &Other) const {
    return isInf() ? Other : *this;
  }

  /// Saturating addition (∞ absorbs).
  NatInf plus(uint64_t K) const {
    if (isInf())
      return inf();
    uint64_t R = Value + K;
    return R < Value || R == InfRep ? inf() : fromRep(R);
  }

  std::string str() const {
    return isInf() ? "inf" : std::to_string(Value);
  }

  size_t hashValue() const { return std::hash<uint64_t>{}(Value); }

private:
  static constexpr uint64_t InfRep = ~0ULL;
  static NatInf fromRep(uint64_t Rep) {
    NatInf N;
    N.Value = Rep;
    return N;
  }
  uint64_t Value;
};

} // namespace warrow

template <> struct std::hash<warrow::NatInf> {
  size_t operator()(const warrow::NatInf &N) const { return N.hashValue(); }
};

#endif // WARROW_LATTICE_NATINF_H
