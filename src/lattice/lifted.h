//===- lattice/lifted.h - Bottom-lifting a domain ---------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `Lifted<D>` adds a fresh bottom element below an existing domain. The
/// analysis uses it to distinguish "unreachable program point" (the fresh
/// bottom) from "reachable with empty knowledge" (D's own bottom, e.g. an
/// environment with no variables yet).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_LIFTED_H
#define WARROW_LATTICE_LIFTED_H

#include "support/hash.h"

#include <cassert>
#include <functional>
#include <optional>
#include <string>
#include <utility>

namespace warrow {

/// D extended with a fresh least element ("unreachable").
template <typename D> class Lifted {
public:
  /// Default: the fresh bottom.
  Lifted() = default;

  static Lifted bot() { return Lifted(); }
  static Lifted of(D Value) {
    Lifted L;
    L.Payload = std::move(Value);
    return L;
  }

  bool isBot() const { return !Payload.has_value(); }
  const D &value() const {
    assert(Payload && "bottom Lifted has no payload");
    return *Payload;
  }

  bool leq(const Lifted &O) const {
    if (isBot())
      return true;
    if (O.isBot())
      return false;
    return Payload->leq(*O.Payload);
  }
  Lifted join(const Lifted &O) const {
    if (isBot())
      return O;
    if (O.isBot())
      return *this;
    return of(Payload->join(*O.Payload));
  }
  Lifted meet(const Lifted &O) const {
    if (isBot() || O.isBot())
      return bot();
    return of(Payload->meet(*O.Payload));
  }
  bool operator==(const Lifted &O) const {
    if (isBot() || O.isBot())
      return isBot() == O.isBot();
    return *Payload == *O.Payload;
  }
  Lifted widen(const Lifted &O) const {
    if (isBot())
      return O;
    if (O.isBot())
      return *this;
    return of(Payload->widen(*O.Payload));
  }
  Lifted narrow(const Lifted &O) const {
    if (isBot() || O.isBot())
      return O;
    return of(Payload->narrow(*O.Payload));
  }

  std::string str() const {
    return isBot() ? "unreachable" : Payload->str();
  }

  size_t hashValue() const {
    return isBot() ? 0x1f : hashAll(std::hash<D>{}(*Payload));
  }

private:
  std::optional<D> Payload;
};

} // namespace warrow

template <typename D> struct std::hash<warrow::Lifted<D>> {
  size_t operator()(const warrow::Lifted<D> &L) const {
    return L.hashValue();
  }
};

#endif // WARROW_LATTICE_LIFTED_H
