//===- lattice/parity.h - Parity domain -------------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four-element parity lattice: bot < {Even, Odd} < top, with exact
/// abstract arithmetic. A classical companion domain for intervals
/// (products of the two recover information neither has alone); here it
/// primarily exercises the generic solver machinery with another finite
/// domain and feeds the product-domain tests.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_PARITY_H
#define WARROW_LATTICE_PARITY_H

#include <cstdint>
#include <functional>
#include <string>

namespace warrow {

/// bot < Even, Odd < top.
class Parity {
public:
  /// Default: bottom.
  Parity() : Bits(0) {}

  static Parity bot() { return Parity(0); }
  static Parity top() { return Parity(EvenBit | OddBit); }
  static Parity even() { return Parity(EvenBit); }
  static Parity odd() { return Parity(OddBit); }

  /// Abstraction of a concrete integer.
  static Parity ofValue(int64_t V) {
    // C's % can yield -1 for negative odd values; test against 0.
    return V % 2 == 0 ? even() : odd();
  }

  bool isBot() const { return Bits == 0; }
  bool isTop() const { return Bits == (EvenBit | OddBit); }
  bool mayBeEven() const { return Bits & EvenBit; }
  bool mayBeOdd() const { return Bits & OddBit; }

  bool leq(const Parity &O) const { return (Bits & ~O.Bits) == 0; }
  Parity join(const Parity &O) const { return Parity(Bits | O.Bits); }
  Parity meet(const Parity &O) const { return Parity(Bits & O.Bits); }
  bool operator==(const Parity &O) const { return Bits == O.Bits; }

  // Finite lattice: join is a widening, the new value a narrowing.
  Parity widen(const Parity &O) const { return join(O); }
  Parity narrow(const Parity &O) const { return O; }

  // --- Abstract arithmetic --------------------------------------------------
  Parity add(const Parity &O) const {
    if (isBot() || O.isBot())
      return bot();
    Parity R = bot();
    // even+even=even, odd+odd=even, mixed=odd.
    if ((mayBeEven() && O.mayBeEven()) || (mayBeOdd() && O.mayBeOdd()))
      R = R.join(even());
    if ((mayBeEven() && O.mayBeOdd()) || (mayBeOdd() && O.mayBeEven()))
      R = R.join(odd());
    return R;
  }
  Parity sub(const Parity &O) const { return add(O); } // Same table.
  Parity mul(const Parity &O) const {
    if (isBot() || O.isBot())
      return bot();
    Parity R = bot();
    if (mayBeEven() || O.mayBeEven())
      R = R.join(even());
    if (mayBeOdd() && O.mayBeOdd())
      R = R.join(odd());
    return R;
  }
  Parity neg() const { return *this; }

  std::string str() const {
    static const char *Names[4] = {"bot", "even", "odd", "top"};
    return Names[Bits];
  }

  size_t hashValue() const { return std::hash<uint8_t>{}(Bits); }

private:
  static constexpr uint8_t EvenBit = 1, OddBit = 2;
  explicit Parity(uint8_t Bits) : Bits(Bits) {}
  uint8_t Bits;
};

} // namespace warrow

template <> struct std::hash<warrow::Parity> {
  size_t operator()(const warrow::Parity &P) const { return P.hashValue(); }
};

#endif // WARROW_LATTICE_PARITY_H
