//===- lattice/mapdom.h - Map lattices --------------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pointwise map lattice `K -> D` where keys absent from the map are
/// implicitly bound to `D::bot()`. Backed by a sorted vector of pairs for
/// deterministic iteration and cheap pointwise merges.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_MAPDOM_H
#define WARROW_LATTICE_MAPDOM_H

#include "support/hash.h"

#include <algorithm>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace warrow {

/// Pointwise-lifted lattice of finite maps; missing keys mean bottom.
/// Bindings to D::bot() are normalized away so that `==` is extensional.
template <typename K, typename D> class MapLattice {
public:
  MapLattice() = default;

  static MapLattice bot() { return MapLattice(); }

  /// Value bound to \p Key (bottom when absent).
  D get(const K &Key) const {
    auto It = find(Key);
    return It == Entries.end() ? D::bot() : It->second;
  }

  /// Binds \p Key to \p Value (erases the entry when Value is bottom).
  void set(const K &Key, D Value) {
    auto It = lowerBound(Key);
    bool Present = It != Entries.end() && It->first == Key;
    if (Value == D::bot()) {
      if (Present)
        Entries.erase(It);
      return;
    }
    if (Present)
      It->second = std::move(Value);
    else
      Entries.insert(It, {Key, std::move(Value)});
  }

  bool isBot() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  const std::vector<std::pair<K, D>> &entries() const { return Entries; }

  bool leq(const MapLattice &O) const {
    for (const auto &[Key, Value] : Entries)
      if (!Value.leq(O.get(Key)))
        return false;
    return true;
  }

  bool operator==(const MapLattice &O) const { return Entries == O.Entries; }

  MapLattice join(const MapLattice &O) const {
    return merge(O, [](const D &A, const D &B) { return A.join(B); });
  }
  MapLattice widen(const MapLattice &O) const {
    return merge(O, [](const D &A, const D &B) { return A.widen(B); });
  }
  MapLattice narrow(const MapLattice &O) const {
    // Pointwise narrowing. Keys present only in `this` keep their value
    // (narrowing with bottom would be unsound pointwise-wise only if D's
    // narrow mishandles it; keeping the old value is always legal).
    MapLattice R = *this;
    for (auto &[Key, Value] : R.Entries)
      Value = Value.narrow(O.get(Key));
    R.normalize();
    return R;
  }
  MapLattice meet(const MapLattice &O) const {
    MapLattice R;
    for (const auto &[Key, Value] : Entries) {
      D M = Value.meet(O.get(Key));
      if (!(M == D::bot()))
        R.Entries.push_back({Key, std::move(M)});
    }
    return R;
  }

  std::string str() const {
    std::string Out = "{";
    bool FirstEntry = true;
    for (const auto &[Key, Value] : Entries) {
      if (!FirstEntry)
        Out += ", ";
      FirstEntry = false;
      if constexpr (std::is_arithmetic_v<K>)
        Out += std::to_string(Key);
      else
        Out += "?";
      Out += "->" + Value.str();
    }
    return Out + "}";
  }

  size_t hashValue() const {
    size_t Seed = Entries.size();
    for (const auto &[Key, Value] : Entries) {
      hashCombine(Seed, std::hash<K>{}(Key));
      hashCombine(Seed, std::hash<D>{}(Value));
    }
    return Seed;
  }

private:
  using Entry = std::pair<K, D>;
  std::vector<Entry> Entries; // Sorted by key, no bottom values.

  typename std::vector<Entry>::const_iterator find(const K &Key) const {
    auto It = lowerBound(Key);
    if (It != Entries.end() && It->first == Key)
      return It;
    return Entries.end();
  }

  typename std::vector<Entry>::const_iterator lowerBound(const K &Key) const {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Key,
        [](const Entry &E, const K &Key) { return E.first < Key; });
  }
  typename std::vector<Entry>::iterator lowerBound(const K &Key) {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Key,
        [](const Entry &E, const K &Key) { return E.first < Key; });
  }

  template <typename Fn> MapLattice merge(const MapLattice &O, Fn Op) const {
    MapLattice R;
    size_t I = 0, J = 0;
    while (I < Entries.size() || J < O.Entries.size()) {
      if (J == O.Entries.size() ||
          (I < Entries.size() && Entries[I].first < O.Entries[J].first)) {
        R.Entries.push_back({Entries[I].first, Op(Entries[I].second, D::bot())});
        ++I;
      } else if (I == Entries.size() ||
                 O.Entries[J].first < Entries[I].first) {
        R.Entries.push_back(
            {O.Entries[J].first, Op(D::bot(), O.Entries[J].second)});
        ++J;
      } else {
        R.Entries.push_back(
            {Entries[I].first, Op(Entries[I].second, O.Entries[J].second)});
        ++I;
        ++J;
      }
    }
    R.normalize();
    return R;
  }

  void normalize() {
    Entries.erase(std::remove_if(
                      Entries.begin(), Entries.end(),
                      [](const Entry &E) { return E.second == D::bot(); }),
                  Entries.end());
  }
};

} // namespace warrow

template <typename K, typename D>
struct std::hash<warrow::MapLattice<K, D>> {
  size_t operator()(const warrow::MapLattice<K, D> &M) const {
    return M.hashValue();
  }
};

#endif // WARROW_LATTICE_MAPDOM_H
