//===- lattice/thresholds.h - Widening threshold sets -----------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Threshold sets for `Interval::widenWithThresholds`. Related work cited
/// by the paper improves the *operators* (e.g. widening with thresholds or
/// landmarks [Simon & King, APLAS'06]); the paper's ⊟ is complementary to
/// such refinements, and the ablation bench compares both axes.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_THRESHOLDS_H
#define WARROW_LATTICE_THRESHOLDS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace warrow {

/// A sorted, deduplicated set of widening thresholds.
class ThresholdSet {
public:
  ThresholdSet() = default;

  /// Builds from arbitrary values (sorts and dedupes). 0, 1, and -1 are
  /// always included — they stabilize common loop idioms.
  static ThresholdSet of(std::vector<int64_t> Values);

  void add(int64_t Value);

  const std::vector<int64_t> &values() const { return Sorted; }
  bool empty() const { return Sorted.empty(); }
  size_t size() const { return Sorted.size(); }

private:
  std::vector<int64_t> Sorted;
};

} // namespace warrow

#endif // WARROW_LATTICE_THRESHOLDS_H
