//===- lattice/interval.cpp - Integer interval domain ----------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lattice/interval.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

using namespace warrow;

bool Interval::leq(const Interval &Other) const {
  if (Empty)
    return true;
  if (Other.Empty)
    return false;
  return Other.Lo <= Lo && Hi <= Other.Hi;
}

Interval Interval::join(const Interval &Other) const {
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this;
  return Interval(min(Lo, Other.Lo), max(Hi, Other.Hi));
}

Interval Interval::meet(const Interval &Other) const {
  if (Empty || Other.Empty)
    return bot();
  Bound NewLo = max(Lo, Other.Lo);
  Bound NewHi = min(Hi, Other.Hi);
  if (NewLo > NewHi)
    return bot();
  return Interval(NewLo, NewHi);
}

bool Interval::operator==(const Interval &Other) const {
  if (Empty || Other.Empty)
    return Empty == Other.Empty;
  return Lo == Other.Lo && Hi == Other.Hi;
}

Interval Interval::widen(const Interval &Other) const {
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this;
  Bound NewLo = Other.Lo < Lo ? Bound::negInf() : Lo;
  Bound NewHi = Other.Hi > Hi ? Bound::posInf() : Hi;
  return Interval(NewLo, NewHi);
}

Interval Interval::narrow(const Interval &Other) const {
  // Precondition of narrowing: Other ⊑ *this. Only infinite bounds improve.
  if (Other.Empty)
    return Other;
  if (Empty)
    return *this;
  Bound NewLo = Lo.isNegInf() ? Other.Lo : Lo;
  Bound NewHi = Hi.isPosInf() ? Other.Hi : Hi;
  if (NewLo > NewHi) // Defensive: tolerate misuse on incomparable args.
    return Other;
  return Interval(NewLo, NewHi);
}

Interval
Interval::widenWithThresholds(const Interval &Other,
                              const std::vector<int64_t> &Thresholds) const {
  if (Empty)
    return Other;
  if (Other.Empty)
    return *this;
  Bound NewLo = Lo;
  if (Other.Lo < Lo) {
    // Snap to the largest threshold <= Other.Lo, else -inf.
    NewLo = Bound::negInf();
    if (Other.Lo.isFinite()) {
      auto It = std::upper_bound(Thresholds.begin(), Thresholds.end(),
                                 Other.Lo.finite());
      if (It != Thresholds.begin())
        NewLo = Bound(*std::prev(It));
    }
  }
  Bound NewHi = Hi;
  if (Other.Hi > Hi) {
    // Snap to the smallest threshold >= Other.Hi, else +inf.
    NewHi = Bound::posInf();
    if (Other.Hi.isFinite()) {
      auto It = std::lower_bound(Thresholds.begin(), Thresholds.end(),
                                 Other.Hi.finite());
      if (It != Thresholds.end())
        NewHi = Bound(*It);
    }
  }
  return Interval(NewLo, NewHi);
}

Interval Interval::add(const Interval &Other) const {
  if (Empty || Other.Empty)
    return bot();
  return Interval(Lo + Other.Lo, Hi + Other.Hi);
}

Interval Interval::sub(const Interval &Other) const {
  if (Empty || Other.Empty)
    return bot();
  return Interval(Lo - Other.Hi, Hi - Other.Lo);
}

Interval Interval::mul(const Interval &Other) const {
  if (Empty || Other.Empty)
    return bot();
  Bound Candidates[4] = {Lo * Other.Lo, Lo * Other.Hi, Hi * Other.Lo,
                         Hi * Other.Hi};
  Bound NewLo = Candidates[0], NewHi = Candidates[0];
  for (const Bound &C : Candidates) {
    NewLo = min(NewLo, C);
    NewHi = max(NewHi, C);
  }
  return Interval(NewLo, NewHi);
}

Interval Interval::div(const Interval &Other) const {
  if (Empty || Other.Empty)
    return bot();
  // Remove 0 from the divisor: divide by the positive and negative parts
  // separately and join.
  Interval Pos = Other.meet(atLeast(Bound(1)));
  Interval Neg = Other.meet(atMost(Bound(-1)));
  Interval Result = bot();
  auto DivideBy = [&](const Interval &Divisor) {
    if (Divisor.Empty)
      return;
    Bound Candidates[4] = {Lo / Divisor.Lo, Lo / Divisor.Hi, Hi / Divisor.Lo,
                           Hi / Divisor.Hi};
    Bound NewLo = Candidates[0], NewHi = Candidates[0];
    for (const Bound &C : Candidates) {
      NewLo = min(NewLo, C);
      NewHi = max(NewHi, C);
    }
    Result = Result.join(Interval(NewLo, NewHi));
  };
  DivideBy(Pos);
  DivideBy(Neg);
  return Result;
}

Interval Interval::rem(const Interval &Other) const {
  if (Empty || Other.Empty)
    return bot();
  // |a % b| < |b| and the sign of a % b follows a (C semantics).
  Bound MaxAbsDivisorMinus1;
  if (!Other.Lo.isFinite() || !Other.Hi.isFinite()) {
    MaxAbsDivisorMinus1 = Bound::posInf();
  } else {
    int64_t AbsLo = Other.Lo.finite() == std::numeric_limits<int64_t>::min()
                        ? std::numeric_limits<int64_t>::max()
                        : std::abs(Other.Lo.finite());
    int64_t AbsHi = std::abs(Other.Hi.finite());
    int64_t M = std::max(AbsLo, AbsHi);
    if (M == 0)
      return bot(); // Divisor is exactly [0,0]: undefined everywhere.
    MaxAbsDivisorMinus1 = Bound(M - 1);
  }
  Bound NewLo = Lo >= Bound(0) ? Bound(0) : -MaxAbsDivisorMinus1;
  Bound NewHi = Hi <= Bound(0) ? Bound(0) : MaxAbsDivisorMinus1;
  // The result is also bounded by the dividend's magnitude when that is
  // tighter (e.g. [0,3] % [10,10] = [0,3]).
  if (Lo >= Bound(0) && Hi < NewHi)
    NewHi = Hi;
  if (Hi <= Bound(0) && Lo > NewLo)
    NewLo = Lo;
  return Interval(NewLo, NewHi);
}

Interval Interval::neg() const {
  if (Empty)
    return bot();
  return Interval(-Hi, -Lo);
}

Interval Interval::restrictLess(const Interval &Other) const {
  if (Empty || Other.Empty)
    return bot();
  return meet(atMost(Other.Hi.pred()));
}

Interval Interval::restrictLessEq(const Interval &Other) const {
  if (Empty || Other.Empty)
    return bot();
  return meet(atMost(Other.Hi));
}

Interval Interval::restrictGreater(const Interval &Other) const {
  if (Empty || Other.Empty)
    return bot();
  return meet(atLeast(Other.Lo.succ()));
}

Interval Interval::restrictGreaterEq(const Interval &Other) const {
  if (Empty || Other.Empty)
    return bot();
  return meet(atLeast(Other.Lo));
}

Interval Interval::restrictNotEqual(const Interval &Other) const {
  if (Empty)
    return bot();
  if (Other.Empty)
    return *this;
  if (!(Other.Lo == Other.Hi))
    return *this; // Non-singleton: cannot refine an interval.
  Bound V = Other.Lo;
  if (Lo == V && Hi == V)
    return bot();
  if (Lo == V)
    return Interval(Lo.succ(), Hi);
  if (Hi == V)
    return Interval(Lo, Hi.pred());
  return *this;
}

std::string Interval::str() const {
  if (Empty)
    return "bot";
  if (isTop())
    return "top";
  return "[" + Lo.str() + "," + Hi.str() + "]";
}
