//===- lattice/dbm.h - Difference-bound matrices ----------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense difference-bound matrices (the *zones* weakly-relational domain
/// of Miné): a square matrix over `Bound` where entry (i, j) constrains
/// v_i - v_j <= M[i][j]. Index 0 is the implicit zero variable, so row 0 /
/// column 0 carry the unary bounds: v_i <= M[i][0] and -v_i <= M[0][i].
///
/// The canonical form is the shortest-path *closure* (Floyd–Warshall); a
/// negative entry on the diagonal means the constraint set is infeasible
/// (bottom — represented one level up, like the interval domain's empty
/// case in `AbsValue`). The widening is the one from Bagnara et al.,
/// *Widening Operators for Weakly-Relational Numeric Abstractions*: keep
/// an entry if the new value still satisfies it, drop it to +inf
/// otherwise — and, crucially for termination, the left operand is used
/// in its *stored (possibly unclosed)* form and the result is left
/// unclosed: re-closing a widened matrix can re-derive finite entries and
/// restart the ascending chain. The narrowing refines only +inf entries,
/// mirroring the interval domain's "only infinite bounds improve" rule,
/// so +inf entry counts decrease monotonically along a narrowing chain.
///
/// Entries are never -inf (intervals are non-empty, so unary constraints
/// are finite or +inf, and min/+ preserves that); saturating sums that
/// clamp to +inf merely drop a derived constraint, which is sound.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_DBM_H
#define WARROW_LATTICE_DBM_H

#include "lattice/interval.h"
#include "support/saturating.h"

#include <cstddef>
#include <string>
#include <vector>

namespace warrow {

/// A difference-bound matrix over `NumVars` tracked variables plus the
/// implicit zero variable (dimension NumVars + 1). Default state: top
/// (no constraints), which is trivially closed.
class Dbm {
public:
  /// Top over \p NumVars tracked variables.
  explicit Dbm(size_t NumVars);

  size_t numVars() const { return Dim - 1; }
  size_t dim() const { return Dim; }

  Bound at(size_t I, size_t J) const { return M[I * Dim + J]; }
  /// Raw entry write; caller owns the closure discipline.
  void set(size_t I, size_t J, Bound B) {
    M[I * Dim + J] = B;
    Closed = false;
  }
  /// Tightens entry (I, J) to min(current, B); returns true on change.
  /// Keeps the `closed()` flag untouched — follow with
  /// `closeAfterTighten(I, J)` to restore canonical form incrementally.
  bool tighten(size_t I, size_t J, Bound B);

  /// True when the matrix is known to be in shortest-path closed form.
  bool closed() const { return Closed; }
  /// Asserts closedness without running Floyd–Warshall; for callers that
  /// rebuilt entries from a closed matrix by a closure-preserving
  /// transformation (projection, embedding, uniform shift).
  void markClosed() { Closed = true; }

  /// Full Floyd–Warshall closure (O(dim³), row-major k-outer loops so the
  /// inner sweep is a contiguous row walk). Returns false — leaving the
  /// matrix unspecified — when a diagonal entry goes negative (bottom).
  bool close();

  /// Incremental O(dim²) re-closure after a single `tighten(A, B)` on an
  /// otherwise closed matrix. Same bottom contract as `close`.
  bool closeAfterTighten(size_t A, size_t B);

  /// Projects out matrix index \p I (existential quantification): its row
  /// and column revert to unconstrained. A closed matrix stays closed.
  void forget(size_t I);

  /// Unary bounds of matrix index \p I as an interval: [-M[0][I], M[I][0]].
  /// Meaningful on closed matrices.
  Interval bounds(size_t I) const;
  /// Bounds of the difference v_I - v_J: [-M[J][I], M[I][J]].
  Interval diffBounds(size_t I, size_t J) const;

  /// Tightens the unary constraints of index \p I to \p V and re-closes
  /// incrementally. \p V must be non-empty. False when infeasible.
  bool constrainInterval(size_t I, const Interval &V);

  // --- Lattice structure (operands must have equal dimension) -------------
  /// Pointwise <=. For the semantic inclusion test close *this* first;
  /// pointwise on a closed left operand vs a closed right operand is the
  /// exact zone inclusion.
  bool pointwiseLeq(const Dbm &Other) const;
  /// Pointwise max — the join of two *closed* operands (closure-preserving).
  static Dbm pointwiseMax(const Dbm &A, const Dbm &B);
  /// Pointwise min — the meet; result needs a `close()` (may be bottom).
  static Dbm pointwiseMin(const Dbm &A, const Dbm &B);

  // --- Acceleration ---------------------------------------------------------
  /// Bagnara-et-al. widening: entry kept where Other (closed) still
  /// satisfies it, +inf otherwise. Apply to the stored (possibly
  /// unclosed) *this*; the result is deliberately left unclosed.
  Dbm widen(const Dbm &Other) const;
  /// As `widen`, but an unstable entry first snaps to the smallest
  /// enclosing threshold (sorted ascending; the program-constant sets are
  /// closed under negation, so one rule serves unary and difference
  /// entries alike) before falling to +inf.
  Dbm widenWithThresholds(const Dbm &Other,
                          const std::vector<int64_t> &Thresholds) const;
  /// Stabilizing narrowing: only +inf entries adopt Other's (closed)
  /// entries; everything finite is kept. Result needs a `close()`.
  Dbm narrow(const Dbm &Other) const;

  bool operator==(const Dbm &Other) const {
    return Dim == Other.Dim && M == Other.M;
  }

  /// "[x1-x0<=3, x1<=7, ...]" using v0 for the zero var; omits +inf.
  std::string str() const;

  size_t hashValue() const;

private:
  size_t Dim;
  bool Closed;
  std::vector<Bound> M;
};

} // namespace warrow

template <> struct std::hash<warrow::Dbm> {
  size_t operator()(const warrow::Dbm &D) const { return D.hashValue(); }
};

#endif // WARROW_LATTICE_DBM_H
