//===- lattice/thresholds.cpp - Widening threshold sets --------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lattice/thresholds.h"

#include <algorithm>

using namespace warrow;

ThresholdSet ThresholdSet::of(std::vector<int64_t> Values) {
  ThresholdSet S;
  S.Sorted = std::move(Values);
  S.Sorted.push_back(-1);
  S.Sorted.push_back(0);
  S.Sorted.push_back(1);
  std::sort(S.Sorted.begin(), S.Sorted.end());
  S.Sorted.erase(std::unique(S.Sorted.begin(), S.Sorted.end()),
                 S.Sorted.end());
  return S;
}

void ThresholdSet::add(int64_t Value) {
  auto It = std::lower_bound(Sorted.begin(), Sorted.end(), Value);
  if (It != Sorted.end() && *It == Value)
    return;
  Sorted.insert(It, Value);
}
