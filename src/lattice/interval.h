//===- lattice/interval.h - Integer interval domain -------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical integer interval domain of Cousot & Cousot, over
/// mathematical integers extended with +/- infinity (`Bound`).
///
/// Widening pins unstable bounds to infinity (optionally passing through a
/// sorted threshold set first); narrowing improves *only* infinite bounds —
/// the standard definitions, satisfying the laws required by `WidenNarrow`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_INTERVAL_H
#define WARROW_LATTICE_INTERVAL_H

#include "support/hash.h"
#include "support/saturating.h"

#include <cassert>
#include <string>
#include <vector>

namespace warrow {

/// An integer interval: empty (bottom) or [Lo, Hi] with Lo <= Hi.
class Interval {
public:
  /// Default-constructs bottom (the empty interval).
  Interval() : Empty(true), Lo(Bound(0)), Hi(Bound(0)) {}

  static Interval bot() { return Interval(); }
  static Interval top() {
    return Interval(Bound::negInf(), Bound::posInf());
  }
  /// Singleton [V, V].
  static Interval constant(int64_t V) {
    return Interval(Bound(V), Bound(V));
  }
  /// [Lo, Hi]; asserts Lo <= Hi.
  static Interval make(Bound Lo, Bound Hi) { return Interval(Lo, Hi); }
  static Interval make(int64_t Lo, int64_t Hi) {
    return Interval(Bound(Lo), Bound(Hi));
  }
  /// [Lo, +inf).
  static Interval atLeast(Bound Lo) { return Interval(Lo, Bound::posInf()); }
  /// (-inf, Hi].
  static Interval atMost(Bound Hi) { return Interval(Bound::negInf(), Hi); }

  bool isBot() const { return Empty; }
  bool isTop() const { return !Empty && Lo.isNegInf() && Hi.isPosInf(); }
  /// True for a non-empty singleton [v, v] with finite v.
  bool isConstant() const { return !Empty && Lo == Hi && Lo.isFinite(); }

  Bound lo() const {
    assert(!Empty && "bottom interval has no bounds");
    return Lo;
  }
  Bound hi() const {
    assert(!Empty && "bottom interval has no bounds");
    return Hi;
  }
  /// The constant payload; only valid if `isConstant()`.
  int64_t constantValue() const {
    assert(isConstant() && "not a constant interval");
    return Lo.finite();
  }

  bool contains(int64_t V) const {
    return !Empty && Lo <= Bound(V) && Bound(V) <= Hi;
  }

  // --- Lattice structure ---------------------------------------------------
  bool leq(const Interval &Other) const;
  Interval join(const Interval &Other) const;
  Interval meet(const Interval &Other) const;
  bool operator==(const Interval &Other) const;

  // --- Acceleration ---------------------------------------------------------
  /// Standard widening: bounds that grew jump to infinity.
  Interval widen(const Interval &Other) const;
  /// Standard narrowing: only infinite bounds may be improved.
  Interval narrow(const Interval &Other) const;
  /// Threshold widening: an unstable bound first snaps to the closest
  /// enclosing threshold from \p Thresholds (sorted ascending), and only
  /// past the last threshold jumps to infinity.
  Interval widenWithThresholds(const Interval &Other,
                               const std::vector<int64_t> &Thresholds) const;

  // --- Abstract arithmetic --------------------------------------------------
  Interval add(const Interval &Other) const;
  Interval sub(const Interval &Other) const;
  Interval mul(const Interval &Other) const;
  /// C-style truncating division. Division by an interval containing only 0
  /// yields bottom; otherwise 0 is removed from the divisor.
  Interval div(const Interval &Other) const;
  /// C-style remainder (sign follows the dividend).
  Interval rem(const Interval &Other) const;
  Interval neg() const;

  // --- Refinement helpers (used by guard transfer functions) ----------------
  /// Largest subinterval with all values <  Other's max.
  Interval restrictLess(const Interval &Other) const;
  /// Largest subinterval with all values <= Other's max.
  Interval restrictLessEq(const Interval &Other) const;
  /// Largest subinterval with all values >  Other's min.
  Interval restrictGreater(const Interval &Other) const;
  /// Largest subinterval with all values >= Other's min.
  Interval restrictGreaterEq(const Interval &Other) const;
  /// Meet with Other (refinement on equality guards).
  Interval restrictEqual(const Interval &Other) const { return meet(Other); }
  /// Refinement on disequality: only improves when Other is a constant at
  /// one of our bounds.
  Interval restrictNotEqual(const Interval &Other) const;

  /// "[lo,hi]", "bot", or "top".
  std::string str() const;

  size_t hashValue() const {
    if (Empty)
      return 0x9e3779b9;
    return hashAll(Lo.raw(), Hi.raw());
  }

private:
  Interval(Bound Lo, Bound Hi) : Empty(false), Lo(Lo), Hi(Hi) {
    assert(Lo <= Hi && "inverted interval bounds");
    assert(!Lo.isPosInf() && !Hi.isNegInf() && "degenerate infinities");
  }

  bool Empty;
  Bound Lo, Hi;
};

} // namespace warrow

template <> struct std::hash<warrow::Interval> {
  size_t operator()(const warrow::Interval &I) const { return I.hashValue(); }
};

#endif // WARROW_LATTICE_INTERVAL_H
