//===- lattice/sign.h - Sign domain -----------------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight-element sign lattice over {<0, =0, >0} subsets:
///
///                     top
///                  .   |   .
///                 <=0 !=0 >=0
///                  . x . x .
///                 <0  =0   >0
///                   .  |  .
///                     bot
///
/// Small, finite, and with exact complements — useful both as a secondary
/// analysis domain and as a stress test for the generic solver templates
/// (it exercises a domain whose widening is plain join).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_SIGN_H
#define WARROW_LATTICE_SIGN_H

#include <cstdint>
#include <functional>
#include <string>

namespace warrow {

/// Bitset over the three atoms Neg (<0), Zero (=0), Pos (>0).
class Sign {
public:
  /// Default: bottom (empty set of signs).
  Sign() : Bits(0) {}

  static Sign bot() { return Sign(0); }
  static Sign top() { return Sign(NegBit | ZeroBit | PosBit); }
  static Sign negative() { return Sign(NegBit); }
  static Sign zero() { return Sign(ZeroBit); }
  static Sign positive() { return Sign(PosBit); }
  static Sign nonNegative() { return Sign(ZeroBit | PosBit); }
  static Sign nonPositive() { return Sign(NegBit | ZeroBit); }
  static Sign nonZero() { return Sign(NegBit | PosBit); }

  /// Abstraction of a single concrete integer.
  static Sign ofValue(int64_t V) {
    if (V < 0)
      return negative();
    if (V == 0)
      return zero();
    return positive();
  }

  bool isBot() const { return Bits == 0; }
  bool isTop() const { return Bits == (NegBit | ZeroBit | PosBit); }
  bool mayBeNegative() const { return Bits & NegBit; }
  bool mayBeZero() const { return Bits & ZeroBit; }
  bool mayBePositive() const { return Bits & PosBit; }

  bool leq(const Sign &Other) const { return (Bits & ~Other.Bits) == 0; }
  Sign join(const Sign &Other) const { return Sign(Bits | Other.Bits); }
  Sign meet(const Sign &Other) const { return Sign(Bits & Other.Bits); }
  bool operator==(const Sign &Other) const { return Bits == Other.Bits; }

  // Finite lattice: acceleration is trivial.
  Sign widen(const Sign &Other) const { return join(Other); }
  Sign narrow(const Sign &Other) const { return Other; }

  // --- Abstract arithmetic --------------------------------------------------
  Sign add(const Sign &Other) const {
    if (isBot() || Other.isBot())
      return bot();
    Sign R = bot();
    // Case analysis per atom pair.
    auto Combine = [&R](int A, int B) {
      int S = A + B;
      if (A != 0 && B != 0 && A != B) {
        // neg + pos: anything.
        R = R.join(top());
        return;
      }
      R = R.join(ofValue(S));
      // pos + pos stays pos; but pos + zero stays pos etc. — ofValue of the
      // representative sum is exact for equal-or-zero sign pairs.
    };
    forEachAtomPair(Other, Combine);
    return R;
  }

  Sign neg() const {
    Sign R = bot();
    if (mayBeNegative())
      R = R.join(positive());
    if (mayBeZero())
      R = R.join(zero());
    if (mayBePositive())
      R = R.join(negative());
    return R;
  }

  Sign sub(const Sign &Other) const { return add(Other.neg()); }

  Sign mul(const Sign &Other) const {
    if (isBot() || Other.isBot())
      return bot();
    Sign R = bot();
    forEachAtomPair(Other, [&R](int A, int B) { R = R.join(ofValue(A * B)); });
    return R;
  }

  std::string str() const {
    static const char *Names[8] = {"bot", "<0",  "=0",  "<=0",
                                   ">0",  "!=0", ">=0", "top"};
    return Names[Bits];
  }

  size_t hashValue() const { return std::hash<uint8_t>{}(Bits); }

private:
  static constexpr uint8_t NegBit = 1, ZeroBit = 2, PosBit = 4;
  explicit Sign(uint8_t Bits) : Bits(Bits) {}

  /// Invokes \p F with representative values (-1, 0, 1) of every atom pair
  /// in `this x Other`.
  template <typename Fn> void forEachAtomPair(const Sign &Other, Fn F) const {
    static constexpr int Reps[3] = {-1, 0, 1};
    static constexpr uint8_t Masks[3] = {NegBit, ZeroBit, PosBit};
    for (int I = 0; I < 3; ++I) {
      if (!(Bits & Masks[I]))
        continue;
      for (int J = 0; J < 3; ++J)
        if (Other.Bits & Masks[J])
          F(Reps[I], Reps[J]);
    }
  }

  uint8_t Bits;
};

} // namespace warrow

template <> struct std::hash<warrow::Sign> {
  size_t operator()(const warrow::Sign &S) const { return S.hashValue(); }
};

#endif // WARROW_LATTICE_SIGN_H
