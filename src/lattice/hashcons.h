//===- lattice/hashcons.h - Hash-consing arena ------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic hash-consing: ref-counted nodes holding one value each, plus an
/// arena that *interns* nodes so structurally equal values share a single
/// canonical node. Nodes begin life mutable ("thawed"); interning freezes
/// them — the hash is memoized in the node, and the arena keeps a strong
/// reference so later interns of equal values return the same pointer.
///
/// The payoff on the analysis hot path: copies of interned values are a
/// reference-count bump, and equality of two frozen nodes is a pointer
/// compare (positive case), a memoized-hash compare (almost every negative
/// case), or a structural compare (only on a genuine hash collision or a
/// cross-arena comparison — see AbsEnv::operator==).
///
/// Reference counts are atomic so frozen nodes may be shared across
/// threads (the parallel solvers copy assignments between workers); the
/// arena itself is single-threaded — use one per thread (EnvPool::local()).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_HASHCONS_H
#define WARROW_LATTICE_HASHCONS_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace warrow {

/// A ref-counted node holding one value of \p T. Nodes start mutable;
/// an arena freezes them (once) on interning, memoizing the hash. A
/// frozen node's Data must never be mutated again — every sharer may be
/// relying on the cached hash and on canonical-pointer equality.
template <typename T> struct ConsNode {
  explicit ConsNode(T Value) : Data(std::move(Value)) {}

  mutable std::atomic<uint32_t> RefCount{1};
  /// Memoized hash; valid iff `Frozen`. Written before the release-store
  /// of Frozen, so any thread observing Frozen==true sees the hash.
  size_t Hash = 0;
  std::atomic<bool> Frozen{false};
  T Data;
};

/// Intrusive smart pointer over ConsNode<T>. Copying is a ref-count bump.
template <typename T> class ConsRef {
public:
  ConsRef() = default;
  /// Wraps a fresh value in a new mutable node.
  static ConsRef make(T Value) {
    ConsRef R;
    R.N = new ConsNode<T>(std::move(Value));
    return R;
  }

  ConsRef(const ConsRef &O) : N(O.N) { retain(); }
  ConsRef(ConsRef &&O) noexcept : N(O.N) { O.N = nullptr; }
  ConsRef &operator=(ConsRef O) noexcept {
    std::swap(N, O.N);
    return *this;
  }
  ~ConsRef() { release(); }

  explicit operator bool() const { return N != nullptr; }
  ConsNode<T> *get() const { return N; }
  const T &operator*() const { return N->Data; }
  const T *operator->() const { return &N->Data; }

  /// True when this handle is the only owner; mutation through
  /// `mutableData` is then safe provided the node is not frozen.
  bool unique() const {
    return N && N->RefCount.load(std::memory_order_acquire) == 1;
  }
  bool frozen() const {
    return N && N->Frozen.load(std::memory_order_acquire);
  }
  /// In-place access; callers must hold the only reference to a thawed
  /// node (copy-on-write goes through here — see AbsEnv::mutableEntries).
  T &mutableData() {
    assert(unique() && !frozen() && "mutating a shared or frozen node");
    return N->Data;
  }

  void reset() {
    release();
    N = nullptr;
  }

  /// Pointer identity (not structural equality).
  friend bool operator==(const ConsRef &A, const ConsRef &B) {
    return A.N == B.N;
  }
  friend bool operator!=(const ConsRef &A, const ConsRef &B) {
    return A.N != B.N;
  }

private:
  void retain() const {
    if (N)
      N->RefCount.fetch_add(1, std::memory_order_relaxed);
  }
  void release() const {
    if (N && N->RefCount.fetch_sub(1, std::memory_order_acq_rel) == 1)
      delete N;
  }

  ConsNode<T> *N = nullptr;
};

/// Hash-consing arena. `intern` maps structurally equal values onto one
/// canonical frozen node; collisions (distinct values, equal hash) live
/// side by side in a bucket and are told apart structurally, so a poor
/// \p HashFn costs time, never correctness (hashcons_test exercises a
/// constant hash). The arena holds a strong reference to every canonical
/// node; nodes outlive the arena while any outside reference remains.
template <typename T, typename HashFn = std::hash<T>,
          typename EqFn = std::equal_to<T>>
class HashConsArena {
public:
  /// Interns \p Node: returns the canonical node for its value. A thawed
  /// node whose value is new is frozen in place (no copy); otherwise the
  /// existing canonical node is returned and \p Node is dropped. Already
  /// frozen nodes (canonicalized here or by another arena) pass through.
  ConsRef<T> intern(ConsRef<T> Node) {
    if (!Node || Node.frozen())
      return Node;
    size_t H = HashFn{}(Node.get()->Data);
    std::vector<ConsRef<T>> &Bucket = Table[H];
    for (const ConsRef<T> &Existing : Bucket)
      if (EqFn{}(Existing.get()->Data, Node.get()->Data)) {
        ++HitCount;
        return Existing;
      }
    ++MissCount;
    Node.get()->Hash = H;
    Node.get()->Frozen.store(true, std::memory_order_release);
    Bucket.push_back(Node);
    ++NodeCount;
    return Node;
  }

  ConsRef<T> intern(T &&Value) {
    return intern(ConsRef<T>::make(std::move(Value)));
  }

  /// Number of distinct (canonical) values interned.
  size_t size() const { return NodeCount; }
  /// Interns that found an existing canonical node.
  uint64_t hits() const { return HitCount; }
  /// Interns that created a new canonical node.
  uint64_t misses() const { return MissCount; }

private:
  std::unordered_map<size_t, std::vector<ConsRef<T>>> Table;
  size_t NodeCount = 0;
  uint64_t HitCount = 0;
  uint64_t MissCount = 0;
};

} // namespace warrow

#endif // WARROW_LATTICE_HASHCONS_H
