//===- lattice/combine.h - Generic combine (⊕) operators --------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central abstraction: a *generic solver* performs updates
///
///     sigma[x] <- sigma[x] ⊕ f_x(sigma)
///
/// for a binary operator ⊕ supplied by the client (Section 2). This file
/// provides ⊕ as small function objects:
///
///  - `AssignCombine`   a ⊕ b = b            (plain solutions)
///  - `JoinCombine`     a ⊕ b = a ⊔ b        (post solutions)
///  - `MeetCombine`     a ⊕ b = a ⊓ b        (pre solutions)
///  - `WidenCombine`    a ⊕ b = a ▽ b        (widening iteration)
///  - `NarrowCombine`   a ⊕ b = a △ b        (narrowing iteration)
///  - `WarrowCombine`   the paper's new ⊟:  a △ b if b ⊑ a, else a ▽ b
///  - `DegradingWarrowCombine`  ⊟ with per-unknown switch counters that
///    give up narrowing after k widening/narrowing phase switches
///    (the termination enforcement sketch at the end of Section 4).
///
/// Solvers invoke the operator as `Combine(X, Old, New)` where `X` is the
/// unknown being updated; stateless operators ignore it, the degrading one
/// keys its counters on it.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_COMBINE_H
#define WARROW_LATTICE_COMBINE_H

#include "lattice/lattice.h"

#include <unordered_map>

namespace warrow {

/// a ⊕ b = b. A ⊕-solution is then an ordinary solution sigma[x] = f_x(sigma).
struct AssignCombine {
  template <typename V, typename D>
  D operator()(const V &, const D &, const D &New) const {
    return New;
  }
  /// True if `(a ⊕ b) ⊕ b = a ⊕ b` holds for all a, b. Non-idempotent
  /// operators make worklist solvers reschedule the updated unknown itself
  /// (Section 2's precaution).
  static constexpr bool isIdempotent() { return true; }
};

/// a ⊕ b = a ⊔ b. A ⊕-solution is a post solution.
struct JoinCombine {
  template <typename V, typename D>
  D operator()(const V &, const D &Old, const D &New) const {
    return Old.join(New);
  }
  static constexpr bool isIdempotent() { return true; }
};

/// a ⊕ b = a ⊓ b. A ⊕-solution is a pre solution.
struct MeetCombine {
  template <typename V, typename D>
  D operator()(const V &, const D &Old, const D &New) const {
    return Old.meet(New);
  }
  static constexpr bool isIdempotent() { return true; }
};

/// a ⊕ b = a ▽ b: classical widening iteration.
struct WidenCombine {
  template <typename V, typename D>
  D operator()(const V &, const D &Old, const D &New) const {
    return Old.widen(New);
  }
  // Widenings need not be idempotent in general; standard interval widening
  // is, but stay conservative for the generic case.
  static constexpr bool isIdempotent() { return false; }
};

/// a ⊕ b = a △ b: classical narrowing iteration (only sound when applied
/// to post solutions of monotonic systems; see Fact 1).
struct NarrowCombine {
  template <typename V, typename D>
  D operator()(const V &, const D &Old, const D &New) const {
    return Old.narrow(New);
  }
  static constexpr bool isIdempotent() { return false; }
};

/// The paper's combined operator (Section 3):
///
///     a ⊟ b = a △ b   if b ⊑ a
///             a ▽ b   otherwise
///
/// Lemma 1: every ⊟-solution of a finite system over a lattice is a post
/// solution — regardless of monotonicity of the right-hand sides.
struct WarrowCombine {
  template <typename V, typename D>
  D operator()(const V &, const D &Old, const D &New) const {
    // Identity fast path: a ⊟ a = a △ a = a (△ over intervals/envs keeps
    // the left value when nothing shrank). With hash-consed environments
    // the == is a pointer compare, making re-confirming updates free.
    if (New == Old)
      return Old;
    if (New.leq(Old))
      return Old.narrow(New);
    return Old.widen(New);
  }
  // ⊟ is not necessarily idempotent, but (a ⊟ b) ⊟ b = (a ⊟ b) △ b holds
  // whenever △ is idempotent; solvers must still reschedule on change.
  static constexpr bool isIdempotent() { return false; }
};

/// ⊟ with degrading narrowing. Each unknown carries a counter of switches
/// from the narrowing regime back to widening; once the counter exceeds
/// \p MaxSwitches the operator stops improving values (a ⊕ b = a for b ⊑ a),
/// guaranteeing termination even for non-monotonic systems.
///
/// This object is stateful; use one instance per solver run.
template <typename V> class DegradingWarrowCombine {
public:
  explicit DegradingWarrowCombine(unsigned MaxSwitches)
      : MaxSwitches(MaxSwitches) {}

  template <typename D>
  D operator()(const V &X, const D &Old, const D &New) {
    // a ⊟ₖ a = a, and the seed path for equal values neither armed the
    // narrowing flag nor bumped the counter — state stays identical.
    if (New == Old)
      return Old;
    State &S = States[X];
    if (New.leq(Old)) {
      if (S.Switches >= MaxSwitches)
        return Old; // Narrowing budget exhausted: freeze.
      D Result = Old.narrow(New);
      // Only a narrowing that actually shrank the value arms the switch
      // counter — re-evaluations that merely confirm the current value
      // are not a narrowing phase.
      if (!(Result == Old))
        S.Narrowing = true;
      return Result;
    }
    if (S.Narrowing) {
      S.Narrowing = false;
      ++S.Switches; // A narrowing phase was abandoned for widening again.
    }
    return Old.widen(New);
  }

  static constexpr bool isIdempotent() { return false; }

  /// Total number of narrowing->widening switches observed (diagnostics).
  unsigned totalSwitches() const {
    unsigned N = 0;
    for (const auto &[X, S] : States)
      N += S.Switches;
    return N;
  }

private:
  struct State {
    bool Narrowing = false;
    unsigned Switches = 0;
  };
  unsigned MaxSwitches;
  std::unordered_map<V, State> States;
};

/// ⊟ with *delayed* widening: the first \p Delay growing updates of each
/// unknown are combined with plain join; only afterwards does widening
/// kick in. The classical precision knob (used by Astrée and Goblint):
/// short ascending chains stabilize exactly before any widening loss,
/// at the cost of up to `Delay` extra iterations per unknown.
///
/// Stateful per unknown; use one instance per solver run.
template <typename V> class DelayedWarrowCombine {
public:
  explicit DelayedWarrowCombine(unsigned Delay) : Delay(Delay) {}

  template <typename D>
  D operator()(const V &X, const D &Old, const D &New) {
    if (New == Old)
      return Old; // a ⊟ a = a; growth counters untouched, as before.
    if (New.leq(Old))
      return Old.narrow(New);
    unsigned &Grown = GrowthCount[X];
    if (Grown < Delay) {
      ++Grown;
      return Old.join(New);
    }
    return Old.widen(New);
  }

  static constexpr bool isIdempotent() { return false; }

private:
  unsigned Delay;
  std::unordered_map<V, unsigned> GrowthCount;
};

} // namespace warrow

#endif // WARROW_LATTICE_COMBINE_H
