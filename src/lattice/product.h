//===- lattice/product.h - Product lattices ---------------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Component-wise product of two domains. All operations (order, join,
/// meet, widening, narrowing) act component-wise; the laws lift pointwise.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_LATTICE_PRODUCT_H
#define WARROW_LATTICE_PRODUCT_H

#include "lattice/lattice.h"
#include "support/hash.h"

#include <functional>
#include <string>
#include <utility>

namespace warrow {

/// The direct product A x B with component-wise structure.
template <typename A, typename B> class Product {
public:
  Product() : First(A::bot()), Second(B::bot()) {}
  Product(A First, B Second)
      : First(std::move(First)), Second(std::move(Second)) {}

  static Product bot() { return Product(); }

  const A &first() const { return First; }
  const B &second() const { return Second; }

  bool leq(const Product &O) const {
    return First.leq(O.First) && Second.leq(O.Second);
  }
  Product join(const Product &O) const {
    return Product(First.join(O.First), Second.join(O.Second));
  }
  Product meet(const Product &O) const {
    return Product(First.meet(O.First), Second.meet(O.Second));
  }
  bool operator==(const Product &O) const {
    return First == O.First && Second == O.Second;
  }
  Product widen(const Product &O) const {
    return Product(First.widen(O.First), Second.widen(O.Second));
  }
  Product narrow(const Product &O) const {
    return Product(First.narrow(O.First), Second.narrow(O.Second));
  }

  std::string str() const {
    return "(" + First.str() + "," + Second.str() + ")";
  }

  size_t hashValue() const {
    return hashAll(std::hash<A>{}(First), std::hash<B>{}(Second));
  }

private:
  A First;
  B Second;
};

} // namespace warrow

template <typename A, typename B> struct std::hash<warrow::Product<A, B>> {
  size_t operator()(const warrow::Product<A, B> &P) const {
    return P.hashValue();
  }
};

#endif // WARROW_LATTICE_PRODUCT_H
