//===- corpus/corpus.cpp - On-disk regression corpus runner --------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"

#include "analysis/bounds.h"
#include "analysis/interproc.h"
#include "analysis/races.h"
#include "engine/registry.h"
#include "lang/interp.h"
#include "lang/parser.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace warrow;
using namespace warrow::corpus;

#ifndef WARROW_CORPUS_DIR
#define WARROW_CORPUS_DIR ""
#endif

std::string warrow::corpus::corpusRoot() {
  if (const char *Env = std::getenv("WARROW_CORPUS_DIR"))
    if (*Env)
      return Env;
  return WARROW_CORPUS_DIR;
}

std::optional<CorpusFile>
warrow::corpus::loadCorpusFile(const std::string &Path, std::string &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err += Path + ": cannot open\n";
    return std::nullopt;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  CorpusFile File;
  File.Path = Path;
  File.Name = std::filesystem::path(Path).stem().string();
  File.Source = Buffer.str();
  ParsedDirectives Parsed = parseCorpusDirectives(File.Source);
  if (!Parsed.ok()) {
    Err += Parsed.str(Path);
    return std::nullopt;
  }
  File.D = std::move(Parsed.D);
  // Cross-directive validation that needs the whole header.
  if (File.D.Kind == CorpusKind::Races)
    for (const std::string &Dom : File.D.Domains)
      if (Dom != "interval") {
        Err += Path + ":1: races programs support the interval domain "
                      "only (got DOMAIN: " +
               Dom + ")\n";
        return std::nullopt;
      }
  for (const std::string &Sol : File.D.Solvers)
    if (!solverChoiceForName(Sol)) {
      Err += Path + ":1: SOLVER '" + Sol +
             "' is not an analysis-capable registry solver\n";
      return std::nullopt;
    }
  return File;
}

std::vector<CorpusFile> warrow::corpus::loadCorpus(const std::string &Dir,
                                                   std::string &Err) {
  std::vector<CorpusFile> Files;
  std::error_code Ec;
  std::filesystem::recursive_directory_iterator It(Dir, Ec), End;
  if (Ec) {
    Err += Dir + ": " + Ec.message() + "\n";
    return Files;
  }
  std::vector<std::string> Paths;
  for (; It != End; ++It)
    if (It->is_regular_file() && It->path().extension() == ".mc")
      Paths.push_back(It->path().string());
  std::sort(Paths.begin(), Paths.end());
  for (const std::string &P : Paths)
    if (std::optional<CorpusFile> F = loadCorpusFile(P, Err))
      Files.push_back(std::move(*F));
  // Duplicate stems would make --only ambiguous and silently halve
  // coverage expectations; reject them at load time.
  std::set<std::string> Seen;
  for (const CorpusFile &F : Files)
    if (!Seen.insert(F.Name).second)
      Err += F.Path + ": duplicate corpus program name '" + F.Name + "'\n";
  std::sort(Files.begin(), Files.end(),
            [](const CorpusFile &A, const CorpusFile &B) {
              return A.Name < B.Name;
            });
  return Files;
}

namespace {

/// The analysis-capable registry solver names, in registry order.
std::vector<std::string> analysisSolvers() {
  std::vector<std::string> Names;
  for (const engine::SolverInfo &Info : engine::solverRegistry())
    if (Info.hasCap(engine::CapAnalysis))
      Names.push_back(Info.Name);
  return Names;
}

} // namespace

std::vector<MatrixCell>
warrow::corpus::matrixFor(const CorpusDirectives &D) {
  std::vector<std::string> Domains = D.Domains;
  if (Domains.empty()) {
    Domains = {"interval"};
    if (D.Kind == CorpusKind::Bounds)
      Domains.push_back("zones");
  }
  std::vector<std::string> Solvers =
      D.Solvers.empty() ? analysisSolvers() : D.Solvers;
  std::vector<MatrixCell> Matrix;
  for (const std::string &Dom : Domains)
    for (const std::string &Sol : Solvers)
      Matrix.push_back({Dom, Sol});
  return Matrix;
}

namespace {

/// Collects failure messages with the repro prefix.
class CaseContext {
public:
  CaseContext(const CorpusFile &File, const std::string &Cell,
              CaseResult &Out)
      : File(File), Cell(Cell), Out(Out) {}

  void fail(const std::string &What) {
    Out.Ok = false;
    Out.Failures.push_back(File.Name + " [" + Cell + "]: " + What +
                           " (repro: warrow-corpus --only=" + File.Name +
                           (Cell == "concrete" ? "" : " --cell=" + Cell) +
                           ")");
  }

private:
  const CorpusFile &File;
  std::string Cell;
  CaseResult &Out;
};

/// Function index by spelling; nullopt when absent.
std::optional<uint32_t> functionIndex(const Program &P,
                                      const std::string &Name) {
  for (uint32_t F = 0; F < P.Functions.size(); ++F)
    if (P.Symbols.spelling(P.Functions[F]->Name) == Name)
      return F;
  return std::nullopt;
}

/// Joins σ over contexts and over every CFG node matching the label
/// (`<func>:exit` = the exit node; `<func>:<line>` = every node at that
/// source line). Returns nullopt when no node matches the label at all —
/// a typoed label must fail loudly, not pass vacuously.
std::optional<AbsValue> joinedAtLabel(const Cfg &G, uint32_t FuncIdx,
                                      bool AtExit, uint32_t Line,
                                      const AnalysisResult &Result) {
  std::vector<uint32_t> Nodes;
  for (uint32_t N = 0; N < G.numNodes(); ++N) {
    if (AtExit ? N == G.exit() : G.lineOf(N) == Line)
      Nodes.push_back(N);
  }
  if (Nodes.empty())
    return std::nullopt;
  AbsValue Joined;
  for (const auto &[X, Value] : Result.Solution.Sigma) {
    if (!X.isPoint() || X.Func != FuncIdx)
      continue;
    if (std::find(Nodes.begin(), Nodes.end(), X.Node) != Nodes.end())
      Joined = Joined.join(Value);
  }
  return Joined;
}

/// Interval of \p Var in a joined point value: globals read the
/// flow-insensitive unknown, locals read the (closed, for zones)
/// environment.
Interval varInterval(const Program &P, const AbsValue &V, Symbol Var,
                     const AnalysisResult &Result) {
  if (P.global(Var))
    return Result.globalValue(Var);
  if (V.isRel())
    return V.relValue().closedForm().get(Var);
  return V.envValueOrTop().get(Var);
}

std::string labelStr(const InvExpectation &E) {
  return E.Func + ":" + (E.AtExit ? "exit" : std::to_string(E.LabelLine));
}
std::string labelStr(const RelExpectation &E) {
  return E.Func + ":" + (E.AtExit ? "exit" : std::to_string(E.LabelLine));
}

void checkInvariants(const CorpusFile &File, const MatrixCell &Cell,
                     const Program &P, const ProgramCfg &Cfgs,
                     const AnalysisResult &Result, CaseContext &Ctx) {
  for (const InvExpectation &E : File.D.Invariants) {
    if (!CorpusDirectives::cellMatches(E.Cell, Cell.Domain, Cell.Solver))
      continue;
    std::optional<uint32_t> FuncIdx = functionIndex(P, E.Func);
    if (!FuncIdx) {
      Ctx.fail("EXPECT-INV " + labelStr(E) + ": unknown function '" +
               E.Func + "'");
      continue;
    }
    std::optional<AbsValue> V = joinedAtLabel(
        Cfgs.cfgOf(*FuncIdx), *FuncIdx, E.AtExit, E.LabelLine, Result);
    if (!V) {
      Ctx.fail("EXPECT-INV " + labelStr(E) +
               ": label matches no program point");
      continue;
    }
    if (V->isBot()) {
      Ctx.fail("EXPECT-INV " + labelStr(E) + ": point is unreachable");
      continue;
    }
    Symbol Var = P.Symbols.lookup(E.Var);
    Interval Got = varInterval(P, *V, Var, Result);
    if (Got.isBot()) {
      Ctx.fail("EXPECT-INV " + labelStr(E) + " " + E.Var +
               ": value is bottom");
      continue;
    }
    if (!Got.leq(E.Box))
      Ctx.fail("EXPECT-INV " + labelStr(E) + " " + E.Var + ": got " +
               Got.str() + ", expected within " + E.Box.str());
  }
}

void checkRelations(const CorpusFile &File, const MatrixCell &Cell,
                    const Program &P, const ProgramCfg &Cfgs,
                    const AnalysisResult &Result, CaseContext &Ctx) {
  if (Cell.Domain != "zones")
    return; // Interval environments carry no relations.
  for (const RelExpectation &E : File.D.Relations) {
    if (!CorpusDirectives::cellMatches(E.Cell, Cell.Domain, Cell.Solver))
      continue;
    std::optional<uint32_t> FuncIdx = functionIndex(P, E.Func);
    if (!FuncIdx) {
      Ctx.fail("EXPECT-REL " + labelStr(E) + ": unknown function '" +
               E.Func + "'");
      continue;
    }
    std::optional<AbsValue> V = joinedAtLabel(
        Cfgs.cfgOf(*FuncIdx), *FuncIdx, E.AtExit, E.LabelLine, Result);
    if (!V) {
      Ctx.fail("EXPECT-REL " + labelStr(E) +
               ": label matches no program point");
      continue;
    }
    if (V->isBot()) {
      Ctx.fail("EXPECT-REL " + labelStr(E) + ": point is unreachable");
      continue;
    }
    if (!V->isRel()) {
      Ctx.fail("EXPECT-REL " + labelStr(E) +
               ": point carries no relational value");
      continue;
    }
    Symbol X = P.Symbols.lookup(E.Lhs);
    Symbol Y = P.Symbols.lookup(E.Rhs);
    Interval Diff = V->relValue().closedForm().diffBounds(X, Y);
    if (!(Diff.hi() <= Bound(E.C)))
      Ctx.fail("EXPECT-REL " + labelStr(E) + " " + E.Lhs + "-" + E.Rhs +
               "<=" + std::to_string(E.C) + ": difference bounds are " +
               Diff.str());
  }
}

CaseResult runBoundsCase(const CorpusFile &File, const MatrixCell &Cell,
                         const Program &P, const ProgramCfg &Cfgs,
                         SolverChoice Choice) {
  CaseResult Out;
  CaseContext Ctx(File, Cell.Domain + "/" + Cell.Solver, Out);

  AnalysisOptions Options;
  Options.Domain = *domainForName(Cell.Domain);
  if (File.D.MaxRhsEvals)
    Options.Solver.MaxRhsEvals = *File.D.MaxRhsEvals;

  InterprocAnalysis Analysis(P, Cfgs, Options);
  AnalysisResult Result = Analysis.run(Choice);
  Out.RhsEvals = Result.Stats.RhsEvals;
  if (!Result.Stats.Converged) {
    Ctx.fail("solver hit the evaluation budget (" + Result.Stats.str() +
             ")");
    return Out;
  }
  if (VerifyResult V = Analysis.verifySolution(Result); !V.Ok) {
    Ctx.fail("verifySolution failed:\n" + V.str());
    return Out;
  }

  BoundsReport Report = runBoundsChecker(P, Cfgs, Result);
  Out.Alarms = Report.alarms();
  if (std::optional<uint64_t> Expected =
          File.D.expectedAlarmsFor(Cell.Domain, Cell.Solver);
      Expected && *Expected != Out.Alarms) {
    std::string What = "expected " + std::to_string(*Expected) +
                       " alarm(s), got " + std::to_string(Out.Alarms);
    for (const BoundsFinding &F : Report.Findings)
      What += "\n  " + F.str(P);
    Ctx.fail(What);
  }

  checkInvariants(File, Cell, P, Cfgs, Result, Ctx);
  checkRelations(File, Cell, P, Cfgs, Result, Ctx);
  return Out;
}

CaseResult runRacesCase(const CorpusFile &File, const MatrixCell &Cell,
                        const Program &P, const ProgramCfg &Cfgs,
                        SolverChoice Choice) {
  CaseResult Out;
  CaseContext Ctx(File, Cell.Domain + "/" + Cell.Solver, Out);

  AnalysisOptions Options;
  Options.Domain = AnalysisDomain::Interval;
  if (File.D.MaxRhsEvals)
    Options.Solver.MaxRhsEvals = *File.D.MaxRhsEvals;

  RaceAnalysis Analysis(P, Cfgs, Options);
  RaceAnalysisResult Result = Analysis.run(Choice);
  Out.RhsEvals = Result.Stats.RhsEvals;
  Out.Alarms = Result.Races.size();
  if (!Result.Stats.Converged) {
    Ctx.fail("solver hit the evaluation budget (" + Result.Stats.str() +
             ")");
    return Out;
  }
  // The two-phase family freezes the access accumulators at their
  // ascending-phase values (that is the Example-8 imprecision the corpus
  // documents), so its σ is intentionally not a post-solution; every
  // other solver must verify.
  bool TwoPhaseFamily = Choice == SolverChoice::TwoPhase ||
                        Choice == SolverChoice::TwoPhaseLocalized;
  if (!TwoPhaseFamily) {
    if (VerifyResult V = Analysis.verify(Result); !V.Ok) {
      Ctx.fail("verify failed:\n" + V.str());
      return Out;
    }
  }

  if (std::optional<uint64_t> Expected =
          File.D.expectedAlarmsFor(Cell.Domain, Cell.Solver);
      Expected && *Expected != Out.Alarms) {
    std::string What = "expected " + std::to_string(*Expected) +
                       " race alarm(s), got " + std::to_string(Out.Alarms);
    for (const RaceFinding &F : Result.Races)
      What += "\n  " + F.str(P);
    Ctx.fail(What);
  }

  if (File.D.HasRaceAnswer) {
    // Soundness: every genuinely racy global must be reported. Together
    // with a matching alarm *count* this pins the reported set exactly
    // (one finding per racy global).
    std::set<std::string> Reported;
    for (const RaceFinding &F : Result.Races)
      Reported.insert(P.Symbols.spelling(F.Glob));
    for (const std::string &G : File.D.RacyGlobals)
      if (!Reported.count(G))
        Ctx.fail("missed the known race on '" + G + "'");
  }
  return Out;
}

} // namespace

CaseResult warrow::corpus::runCorpusCase(const CorpusFile &File,
                                         const MatrixCell &Cell) {
  CaseResult Out;
  CaseContext Ctx(File, Cell.Domain + "/" + Cell.Solver, Out);

  std::optional<SolverChoice> Choice = solverChoiceForName(Cell.Solver);
  if (!Choice) {
    Ctx.fail("unknown analysis solver '" + Cell.Solver + "'");
    return Out;
  }
  if (!domainForName(Cell.Domain)) {
    Ctx.fail("unknown domain '" + Cell.Domain + "'");
    return Out;
  }

  DiagnosticEngine Diags;
  auto P = parseProgram(File.Source, Diags);
  if (!P) {
    Ctx.fail("parse failed:\n" + Diags.str());
    return Out;
  }
  ProgramCfg Cfgs = buildProgramCfg(*P);

  if (File.D.Kind == CorpusKind::Races)
    return runRacesCase(File, Cell, *P, Cfgs, *Choice);
  return runBoundsCase(File, Cell, *P, Cfgs, *Choice);
}

CaseResult warrow::corpus::runConcreteCase(const CorpusFile &File) {
  CaseResult Out;
  if (!File.D.ExpectedExit)
    return Out;
  CaseContext Ctx(File, "concrete", Out);

  DiagnosticEngine Diags;
  auto P = parseProgram(File.Source, Diags);
  if (!P) {
    Ctx.fail("parse failed:\n" + Diags.str());
    return Out;
  }
  ProgramCfg Cfgs = buildProgramCfg(*P);
  Interpreter Interp(*P, Cfgs, File.D.Inputs);
  InterpResult R = Interp.run();
  if (!R.finished()) {
    Ctx.fail("concrete run did not finish (" +
             (R.TrapReason.empty() ? std::string("out of fuel")
                                   : R.TrapReason) +
             ")");
    return Out;
  }
  if (R.ReturnValue != *File.D.ExpectedExit)
    Ctx.fail("EXPECT-EXIT " + std::to_string(*File.D.ExpectedExit) +
             ": main returned " + std::to_string(R.ReturnValue));
  return Out;
}

ShardReport warrow::corpus::runCorpusShard(
    const std::vector<CorpusFile> &Files, unsigned Shard,
    unsigned NumShards, bool Verbose, const CorpusFilter &Filter) {
  ShardReport Report;
  if (NumShards == 0)
    NumShards = 1;

  // The deterministic global case list: files (sorted by the loader) ×
  // their matrix cells, plus one concrete case per EXPECT-EXIT file.
  // Sharding is round-robin over this list so every shard mixes cheap
  // and expensive cells.
  struct Case {
    const CorpusFile *File;
    std::optional<MatrixCell> Cell; ///< nullopt = concrete run.
  };
  std::vector<Case> Cases;
  for (const CorpusFile &F : Files) {
    if (!Filter.Only.empty() && F.Name != Filter.Only)
      continue;
    for (const MatrixCell &Cell : matrixFor(F.D)) {
      if (!Filter.Cell.empty() &&
          Cell.Domain + "/" + Cell.Solver != Filter.Cell)
        continue;
      Cases.push_back({&F, Cell});
    }
    if (F.D.ExpectedExit && Filter.Cell.empty())
      Cases.push_back({&F, std::nullopt});
  }

  for (size_t I = 0; I < Cases.size(); ++I) {
    if (I % NumShards != Shard)
      continue;
    const Case &C = Cases[I];
    CaseResult R = C.Cell ? runCorpusCase(*C.File, *C.Cell)
                          : runConcreteCase(*C.File);
    ++Report.Cases;
    if (!R.Ok)
      ++Report.Failed;
    if (Verbose) {
      std::string CellName =
          C.Cell ? C.Cell->Domain + "/" + C.Cell->Solver : "concrete";
      std::printf("%-4s %-24s %-28s alarms=%llu evals=%llu\n",
                  R.Ok ? "ok" : "FAIL", C.File->Name.c_str(),
                  CellName.c_str(),
                  static_cast<unsigned long long>(R.Alarms),
                  static_cast<unsigned long long>(R.RhsEvals));
    }
    for (std::string &F : R.Failures)
      Report.Failures.push_back(std::move(F));
  }
  return Report;
}
