//===- corpus/corpus.h - On-disk regression corpus runner -------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk regression corpus: `.mc` programs under `tests/corpus/`
/// whose expected results travel in their own directive headers
/// (corpus/directives.h), discovered and executed by one runner across
/// the full solver × domain matrix — the CVC4-regress recipe for scaling
/// scenario coverage. A bug report becomes one file dropped into the
/// corpus directory; the sharded `warrow-corpus` ctest targets pick it
/// up with no registration step.
///
/// Every analysis run is re-verified with the independent checkers
/// (`InterprocAnalysis::verifySolution` /
/// `verifySideEffectingSolution`-backed `RaceAnalysis::verify`), so a
/// green corpus means both "expected alarms" and "σ is actually a
/// solution" — except for the two-phase family on races, whose frozen
/// accumulators are deliberately *not* a post-solution (Example 8); those
/// runs check expectations only.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_CORPUS_CORPUS_H
#define WARROW_CORPUS_CORPUS_H

#include "corpus/directives.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace warrow::corpus {

/// One discovered corpus program.
struct CorpusFile {
  std::string Name; ///< File stem, e.g. "loop_exact".
  std::string Path; ///< Path it was loaded from (diagnostics).
  std::string Source;
  CorpusDirectives D;
};

/// The corpus root: `$WARROW_CORPUS_DIR` when set, else the compiled-in
/// source-tree default (`tests/corpus`).
std::string corpusRoot();

/// Loads one `.mc` file, parsing its directive header strictly. On
/// failure (unreadable file or any directive error) appends "<path>:
/// <line>: <message>" diagnostics to \p Err and returns nullopt.
std::optional<CorpusFile> loadCorpusFile(const std::string &Path,
                                         std::string &Err);

/// Discovers every `.mc` file under \p Dir (recursive), sorted by name.
/// Files that fail to load append to \p Err and are dropped — callers
/// must treat a non-empty \p Err as fatal, not as a smaller corpus.
std::vector<CorpusFile> loadCorpus(const std::string &Dir, std::string &Err);

/// One configuration of the execution matrix.
struct MatrixCell {
  std::string Domain; ///< "interval" or "zones".
  std::string Solver; ///< Registry name of an analysis-capable solver.
};

/// The matrix of one file: the directive-listed solvers/domains, or the
/// defaults — every analysis-capable registry solver, over both domains
/// for bounds programs and the interval domain for race programs (the
/// race product value carries interval environments only).
std::vector<MatrixCell> matrixFor(const CorpusDirectives &D);

/// Outcome of one file × cell execution (or one concrete run).
struct CaseResult {
  bool Ok = true;
  uint64_t Alarms = 0;
  uint64_t RhsEvals = 0;
  /// Each entry is self-contained: "<file> [<domain>/<solver>]: <what>",
  /// so a failing cell reproduces with
  /// `warrow-corpus --only=<file> --cell=<domain>/<solver>`.
  std::vector<std::string> Failures;
};

/// Runs \p File under \p Cell: solve, re-verify, check every matching
/// directive (alarm count, EXPECT-INV boxes, EXPECT-REL differences).
CaseResult runCorpusCase(const CorpusFile &File, const MatrixCell &Cell);

/// Concrete-execution check: interprets `main` over the `INPUT` tape and
/// compares the exit value against `EXPECT-EXIT`. Trivially Ok when the
/// file carries no EXPECT-EXIT directive.
CaseResult runConcreteCase(const CorpusFile &File);

/// Aggregate of one (sharded) corpus run.
struct ShardReport {
  uint64_t Cases = 0;
  uint64_t Failed = 0;
  std::vector<std::string> Failures;
};

/// Filter for partial runs (the repro path printed by failures).
struct CorpusFilter {
  std::string Only; ///< Run only the file with this name (empty = all).
  std::string Cell; ///< Run only this "domain/solver" cell (empty = all).
};

/// Runs shard \p Shard of \p NumShards over the deterministic global
/// case list (files sorted by name × their matrix cells, plus one
/// concrete case per file with an EXPECT-EXIT). \p Verbose prints one
/// line per case to stdout.
ShardReport runCorpusShard(const std::vector<CorpusFile> &Files,
                           unsigned Shard, unsigned NumShards, bool Verbose,
                           const CorpusFilter &Filter = {});

} // namespace warrow::corpus

#endif // WARROW_CORPUS_CORPUS_H
