//===- corpus/directives.h - Embedded corpus directives ---------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The embedded-directive header format of corpus `.mc` programs — the
/// generalization of the bounds suite's seeded `// EXPECT-ALARMS:` /
/// `// SOLVER:` lines into a full regression grammar, in the spirit of
/// CVC4's `; COMMAND-LINE:` / `; EXPECT:` regression headers: every
/// expectation travels in the program's own header comments, so a bug
/// report becomes a one-file regression the corpus runner picks up
/// automatically.
///
/// Grammar (one directive per `//` comment line, header block only):
///
///     // KIND: bounds | races
///     // DOMAIN: interval | zones                      (repeatable)
///     // SOLVER: <registry solver name>                (repeatable)
///     // EXPECT-ALARMS: <domain|*>[/<solver|*>] <n>
///     // EXPECT-INV: [<domain|*>/<solver|*>] <func>:<line|exit> <var> [lo,hi]
///     // EXPECT-REL: [<domain|*>/<solver|*>] <func>:<line|exit> <x>-<y><=<c>
///     // EXPECT-RACES: <global>... | none
///     // EXPECT-EXIT: <n>
///     // MAX-RHS-EVALS: <n>
///     // INPUT: <n>...                                 (repeatable)
///
/// Semantics:
///  - `KIND` selects the checker the runner drives (bounds/assert checker
///    vs the lockset race detector); default `bounds`.
///  - `DOMAIN` / `SOLVER` lines restrict the matrix a runner executes;
///    without them the runner uses every registered analysis solver over
///    both domains (races: the interval domain only — the race product
///    value carries interval environments).
///  - `EXPECT-ALARMS` keys are matched most-specific-first exactly as the
///    seeded bounds format (`zones/warrow` over `zones/*` over
///    `*/warrow` over `*`).
///  - `EXPECT-INV` states that the invariant of `<var>`, joined over
///    contexts and over all CFG nodes of `<func>` at source line
///    `<line>` (or at the function exit), is non-bottom and contained in
///    `[lo,hi]` (`-inf`/`+inf` permitted). An optional leading matrix
///    cell (recognized by the `/`) restricts which configurations are
///    held to it — solver-dependent invariants are the point of the
///    paper, so `*/warrow` vs `*/widen` expectations routinely differ.
///  - `EXPECT-REL` states the relational invariant `x - y <= c` at a
///    labeled point; it is checked under the zones domain only (interval
///    environments carry no relations) but still accepts a cell prefix.
///  - `EXPECT-RACES` names the genuinely racy globals (the known answer
///    the ⊟-solver must match exactly, and every sound solver must cover)
///    — `none` for race-free programs. Only meaningful for KIND races.
///  - `EXPECT-EXIT` pins the concrete interpreter's `main` return value
///    over the `INPUT` tape — the cheap soundness anchor per file.
///  - `MAX-RHS-EVALS` is the per-case solver budget
///    (`SolverOptions::MaxRhsEvals`); the solver must converge within it.
///
/// Parsing is *strict*: unknown `EXPECT-*`/`SOLVER`-prefixed keys, bad
/// interval syntax, duplicate `EXPECT-ALARMS` for one matrix cell, and
/// directives after the first non-comment line are all hard errors with
/// file:line diagnostics — a typoed directive must fail the corpus run,
/// never produce a vacuously passing expectation.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_CORPUS_DIRECTIVES_H
#define WARROW_CORPUS_DIRECTIVES_H

#include "lattice/interval.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace warrow::corpus {

/// Which checker a corpus program exercises.
enum class CorpusKind : uint8_t {
  Bounds, ///< Array-bounds / assert checker (analysis/bounds.h).
  Races,  ///< Lockset race detector (analysis/races.h).
};

/// One `EXPECT-INV` expectation: at the labeled point, `Var`'s interval
/// is non-bottom and contained in `Box`.
struct InvExpectation {
  std::string Cell = "*/*"; ///< "<domain|*>/<solver|*>".
  std::string Func;         ///< Function name of the label.
  bool AtExit = false;      ///< True for "<func>:exit" labels.
  uint32_t LabelLine = 0;   ///< Source line of the label (AtExit false).
  std::string Var;
  Interval Box;
  uint32_t Line = 0; ///< Directive line (diagnostics).
};

/// One `EXPECT-REL` expectation: at the labeled point, `Lhs - Rhs <= C`.
struct RelExpectation {
  std::string Cell = "*/*";
  std::string Func;
  bool AtExit = false;
  uint32_t LabelLine = 0;
  std::string Lhs, Rhs;
  int64_t C = 0;
  uint32_t Line = 0;
};

/// Parsed header directives of one corpus program.
struct CorpusDirectives {
  CorpusKind Kind = CorpusKind::Bounds;
  /// "domain/solver" (either side possibly "*") -> expected alarm count.
  std::vector<std::pair<std::string, uint64_t>> ExpectedAlarms;
  /// Solvers the runner should exercise (empty = runner default).
  std::vector<std::string> Solvers;
  /// Domains the runner should exercise (empty = runner default).
  std::vector<std::string> Domains;
  std::vector<InvExpectation> Invariants;
  std::vector<RelExpectation> Relations;
  /// Globals that genuinely race (KIND races); meaningful only when
  /// HasRaceAnswer is set — `EXPECT-RACES: none` yields the empty list.
  std::vector<std::string> RacyGlobals;
  bool HasRaceAnswer = false;
  std::optional<int64_t> ExpectedExit;
  std::optional<uint64_t> MaxRhsEvals;
  /// Input tape for concrete runs (`unknown()` pops from it).
  std::vector<int64_t> Inputs;

  /// Expected alarms for a configuration; most specific key wins,
  /// nullopt when no key covers it.
  std::optional<uint64_t> expectedAlarmsFor(std::string_view Domain,
                                            std::string_view Solver) const;

  /// True when \p Cell ("<domain|*>/<solver|*>") covers the
  /// configuration.
  static bool cellMatches(std::string_view Cell, std::string_view Domain,
                          std::string_view Solver);
};

/// One parse diagnostic, anchored to a 1-based source line.
struct DirectiveError {
  uint32_t Line = 0;
  std::string Message;
};

/// Parser outcome: the directives plus every diagnostic found. A file
/// with any error must be rejected by runners — partial directives are
/// returned for tooling but carry no expectation guarantees.
struct ParsedDirectives {
  CorpusDirectives D;
  std::vector<DirectiveError> Errors;

  bool ok() const { return Errors.empty(); }
  /// All diagnostics as "<file>:<line>: <message>" lines.
  std::string str(const std::string &File) const;
};

/// Parses the embedded-directive header of \p Source (strict grammar
/// above).
ParsedDirectives parseCorpusDirectives(const std::string &Source);

} // namespace warrow::corpus

#endif // WARROW_CORPUS_DIRECTIVES_H
