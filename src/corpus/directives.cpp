//===- corpus/directives.cpp - Embedded corpus directives ----------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/directives.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace warrow;
using namespace warrow::corpus;

namespace {

/// Whole-token strict integer parse (no trailing garbage, no empty).
std::optional<int64_t> parseInt64(std::string_view Tok) {
  if (Tok.empty())
    return std::nullopt;
  std::string S(Tok);
  char *End = nullptr;
  errno = 0;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size() || errno == ERANGE)
    return std::nullopt;
  return static_cast<int64_t>(V);
}

std::optional<uint64_t> parseUint64(std::string_view Tok) {
  if (Tok.empty() || Tok[0] == '-')
    return std::nullopt;
  std::string S(Tok);
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size() || errno == ERANGE)
    return std::nullopt;
  return static_cast<uint64_t>(V);
}

bool isIdentifier(std::string_view Tok) {
  if (Tok.empty())
    return false;
  if (!std::isalpha(static_cast<unsigned char>(Tok[0])) && Tok[0] != '_')
    return false;
  for (char C : Tok)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
      return false;
  return true;
}

/// One bound of an interval literal: `-inf`, `+inf`/`inf`, or an integer.
std::optional<Bound> parseBoundTok(std::string_view Tok) {
  if (Tok == "-inf")
    return Bound::negInf();
  if (Tok == "+inf" || Tok == "inf")
    return Bound::posInf();
  if (std::optional<int64_t> V = parseInt64(Tok))
    return Bound(*V);
  return std::nullopt;
}

/// `[lo,hi]`, written without internal spaces (it is one whitespace-
/// delimited token of the directive).
std::optional<Interval> parseIntervalTok(std::string_view Tok,
                                         std::string &Why) {
  if (Tok.size() < 2 || Tok.front() != '[' || Tok.back() != ']') {
    Why = "expected '[lo,hi]'";
    return std::nullopt;
  }
  std::string_view Body = Tok.substr(1, Tok.size() - 2);
  size_t Comma = Body.find(',');
  if (Comma == std::string_view::npos) {
    Why = "expected ',' inside '[lo,hi]'";
    return std::nullopt;
  }
  std::optional<Bound> Lo = parseBoundTok(Body.substr(0, Comma));
  std::optional<Bound> Hi = parseBoundTok(Body.substr(Comma + 1));
  if (!Lo || !Hi) {
    Why = "bad bound (want an integer, '-inf' or '+inf')";
    return std::nullopt;
  }
  if (!(*Lo <= *Hi)) {
    Why = "empty interval (lo > hi)";
    return std::nullopt;
  }
  return Interval::make(*Lo, *Hi);
}

/// Splits "dom/sol" (or the bare "*" shorthand) into its sides; nullopt
/// with \p Why set when the domain side is not interval/zones/* or a side
/// is empty.
std::optional<std::pair<std::string, std::string>>
parseCell(std::string_view Tok, std::string &Why) {
  if (Tok == "*")
    return std::make_pair(std::string("*"), std::string("*"));
  size_t Slash = Tok.find('/');
  if (Slash == std::string_view::npos) {
    Why = "expected '<domain|*>/<solver|*>' (or bare '*')";
    return std::nullopt;
  }
  std::string Dom(Tok.substr(0, Slash));
  std::string Sol(Tok.substr(Slash + 1));
  if (Dom != "*" && Dom != "interval" && Dom != "zones") {
    Why = "unknown domain '" + Dom + "' (interval, zones, *)";
    return std::nullopt;
  }
  if (Sol.empty() || Sol.find('/') != std::string::npos) {
    Why = "bad solver side '" + Sol + "'";
    return std::nullopt;
  }
  return std::make_pair(Dom, Sol);
}

/// Parses "<func>:<line|exit>" into the label fields of \p E.
template <typename ExpT>
bool parseLabel(std::string_view Tok, ExpT &E, std::string &Why) {
  size_t Colon = Tok.find(':');
  if (Colon == std::string_view::npos || Colon == 0) {
    Why = "expected label '<func>:<line>' or '<func>:exit'";
    return false;
  }
  std::string_view Func = Tok.substr(0, Colon);
  std::string_view Point = Tok.substr(Colon + 1);
  if (!isIdentifier(Func)) {
    Why = "bad function name '" + std::string(Func) + "' in label";
    return false;
  }
  E.Func = std::string(Func);
  if (Point == "exit") {
    E.AtExit = true;
    return true;
  }
  std::optional<int64_t> L = parseInt64(Point);
  if (!L || *L <= 0) {
    Why = "bad label point '" + std::string(Point) +
          "' (want a positive line or 'exit')";
    return false;
  }
  E.LabelLine = static_cast<uint32_t>(*L);
  return true;
}

/// Parses "<x>-<y><=<c>" (one token, no spaces).
bool parseRelExpr(std::string_view Tok, RelExpectation &E, std::string &Why) {
  size_t Le = Tok.find("<=");
  if (Le == std::string_view::npos) {
    Why = "expected '<x>-<y><=<c>'";
    return false;
  }
  std::string_view Diff = Tok.substr(0, Le);
  size_t Minus = Diff.find('-');
  if (Minus == std::string_view::npos) {
    Why = "expected '<x>-<y>' before '<='";
    return false;
  }
  std::string_view X = Diff.substr(0, Minus);
  std::string_view Y = Diff.substr(Minus + 1);
  if (!isIdentifier(X) || !isIdentifier(Y)) {
    Why = "bad variable in '" + std::string(Diff) + "'";
    return false;
  }
  std::optional<int64_t> C = parseInt64(Tok.substr(Le + 2));
  if (!C) {
    Why = "bad constant after '<='";
    return false;
  }
  E.Lhs = std::string(X);
  E.Rhs = std::string(Y);
  E.C = *C;
  return true;
}

std::vector<std::string> tokenize(std::string_view Text) {
  std::vector<std::string> Toks;
  std::istringstream In{std::string(Text)};
  std::string Tok;
  while (In >> Tok)
    Toks.push_back(Tok);
  return Toks;
}

/// Stateful single-pass parser over the source lines.
class Parser {
public:
  explicit Parser(const std::string &Source) : In(Source) {}

  ParsedDirectives run() {
    std::string Line;
    while (std::getline(In, Line)) {
      ++LineNo;
      size_t Start = Line.find_first_not_of(" \t");
      if (Start == std::string::npos)
        continue; // Blank.
      std::string_view Rest(Line.data() + Start, Line.size() - Start);
      if (Rest.substr(0, 2) != "//") {
        SawCode = true;
        continue;
      }
      Rest.remove_prefix(2);
      handleComment(Rest);
    }
    return std::move(Out);
  }

private:
  void error(std::string Message) {
    Out.Errors.push_back({LineNo, std::move(Message)});
  }

  /// A comment line's content (after `//`). Directive keys are
  /// `UPPERCASE[-...]:`; anything else is prose and ignored.
  void handleComment(std::string_view Text) {
    size_t Start = Text.find_first_not_of(" \t");
    if (Start == std::string_view::npos)
      return;
    Text.remove_prefix(Start);
    size_t KeyEnd = 0;
    while (KeyEnd < Text.size() &&
           (std::isupper(static_cast<unsigned char>(Text[KeyEnd])) ||
            std::isdigit(static_cast<unsigned char>(Text[KeyEnd])) ||
            Text[KeyEnd] == '-'))
      ++KeyEnd;
    if (KeyEnd == 0 || KeyEnd == Text.size() || Text[KeyEnd] != ':')
      return; // Prose comment.
    std::string Key(Text.substr(0, KeyEnd));
    bool Known = Key == "KIND" || Key == "DOMAIN" || Key == "SOLVER" ||
                 Key == "EXPECT-ALARMS" || Key == "EXPECT-INV" ||
                 Key == "EXPECT-REL" || Key == "EXPECT-RACES" ||
                 Key == "EXPECT-EXIT" || Key == "MAX-RHS-EVALS" ||
                 Key == "INPUT";
    bool Directiveish = Known || Key.rfind("EXPECT", 0) == 0 ||
                        Key.rfind("SOLVER", 0) == 0;
    if (!Directiveish)
      return; // Prose comment that happens to look like "NOTE: ...".
    if (SawCode) {
      error("directive '" + Key + ":' after first non-comment line");
      return;
    }
    if (!Known) {
      error("unknown directive key '" + Key + ":'");
      return;
    }
    dispatch(Key, tokenize(Text.substr(KeyEnd + 1)));
  }

  void dispatch(const std::string &Key, std::vector<std::string> Toks) {
    if (Key == "KIND")
      parseKind(Toks);
    else if (Key == "DOMAIN")
      parseDomain(Toks);
    else if (Key == "SOLVER")
      parseSolver(Toks);
    else if (Key == "EXPECT-ALARMS")
      parseAlarms(Toks);
    else if (Key == "EXPECT-INV")
      parseInv(Toks);
    else if (Key == "EXPECT-REL")
      parseRel(Toks);
    else if (Key == "EXPECT-RACES")
      parseRaces(Toks);
    else if (Key == "EXPECT-EXIT")
      parseExit(Toks);
    else if (Key == "MAX-RHS-EVALS")
      parseBudget(Toks);
    else if (Key == "INPUT")
      parseInput(Toks);
  }

  bool arity(const std::string &Key, const std::vector<std::string> &Toks,
             size_t Min, size_t Max) {
    if (Toks.size() < Min) {
      error(Key + ": missing operand");
      return false;
    }
    if (Toks.size() > Max) {
      error(Key + ": trailing tokens after '" + Toks[Max - 1] + "'");
      return false;
    }
    return true;
  }

  void parseKind(const std::vector<std::string> &Toks) {
    if (!arity("KIND", Toks, 1, 1))
      return;
    if (SawKind) {
      error("duplicate KIND directive");
      return;
    }
    SawKind = true;
    if (Toks[0] == "bounds")
      Out.D.Kind = CorpusKind::Bounds;
    else if (Toks[0] == "races")
      Out.D.Kind = CorpusKind::Races;
    else
      error("KIND: unknown kind '" + Toks[0] + "' (bounds, races)");
  }

  void parseDomain(const std::vector<std::string> &Toks) {
    if (!arity("DOMAIN", Toks, 1, 1))
      return;
    if (Toks[0] != "interval" && Toks[0] != "zones") {
      error("DOMAIN: unknown domain '" + Toks[0] + "' (interval, zones)");
      return;
    }
    for (const std::string &D : Out.D.Domains)
      if (D == Toks[0]) {
        error("duplicate DOMAIN: " + Toks[0]);
        return;
      }
    Out.D.Domains.push_back(Toks[0]);
  }

  void parseSolver(const std::vector<std::string> &Toks) {
    if (!arity("SOLVER", Toks, 1, 1))
      return;
    for (const std::string &S : Out.D.Solvers)
      if (S == Toks[0]) {
        error("duplicate SOLVER: " + Toks[0]);
        return;
      }
    Out.D.Solvers.push_back(Toks[0]);
  }

  void parseAlarms(const std::vector<std::string> &Toks) {
    if (!arity("EXPECT-ALARMS", Toks, 2, 2))
      return;
    std::string Why;
    std::optional<std::pair<std::string, std::string>> Cell =
        parseCell(Toks[0], Why);
    if (!Cell) {
      error("EXPECT-ALARMS: bad cell '" + Toks[0] + "': " + Why);
      return;
    }
    std::optional<uint64_t> Count = parseUint64(Toks[1]);
    if (!Count) {
      error("EXPECT-ALARMS: bad count '" + Toks[1] + "'");
      return;
    }
    std::string Norm = Cell->first + "/" + Cell->second;
    for (const auto &[Key, Old] : Out.D.ExpectedAlarms)
      if (Key == Norm) {
        error("duplicate EXPECT-ALARMS for cell '" + Norm + "'");
        return;
      }
    Out.D.ExpectedAlarms.push_back({Norm, *Count});
  }

  void parseInv(const std::vector<std::string> &Toks) {
    // [cell] label var box — the optional cell is recognized by its '/'
    // (labels always contain ':' and never '/').
    size_t I = 0;
    InvExpectation E;
    E.Line = LineNo;
    std::string Why;
    if (!Toks.empty() &&
        Toks[0].find('/') != std::string::npos) {
      std::optional<std::pair<std::string, std::string>> Cell =
          parseCell(Toks[0], Why);
      if (!Cell) {
        error("EXPECT-INV: bad cell '" + Toks[0] + "': " + Why);
        return;
      }
      E.Cell = Cell->first + "/" + Cell->second;
      I = 1;
    }
    if (!arity("EXPECT-INV", Toks, I + 3, I + 3))
      return;
    if (!parseLabel(Toks[I], E, Why)) {
      error("EXPECT-INV: " + Why);
      return;
    }
    if (!isIdentifier(Toks[I + 1])) {
      error("EXPECT-INV: bad variable '" + Toks[I + 1] + "'");
      return;
    }
    E.Var = Toks[I + 1];
    std::optional<Interval> Box = parseIntervalTok(Toks[I + 2], Why);
    if (!Box) {
      error("EXPECT-INV: bad interval '" + Toks[I + 2] + "': " + Why);
      return;
    }
    E.Box = *Box;
    Out.D.Invariants.push_back(std::move(E));
  }

  void parseRel(const std::vector<std::string> &Toks) {
    size_t I = 0;
    RelExpectation E;
    E.Line = LineNo;
    std::string Why;
    if (!Toks.empty() && Toks[0].find('/') != std::string::npos) {
      std::optional<std::pair<std::string, std::string>> Cell =
          parseCell(Toks[0], Why);
      if (!Cell) {
        error("EXPECT-REL: bad cell '" + Toks[0] + "': " + Why);
        return;
      }
      E.Cell = Cell->first + "/" + Cell->second;
      I = 1;
    }
    if (!arity("EXPECT-REL", Toks, I + 2, I + 2))
      return;
    if (!parseLabel(Toks[I], E, Why)) {
      error("EXPECT-REL: " + Why);
      return;
    }
    if (!parseRelExpr(Toks[I + 1], E, Why)) {
      error("EXPECT-REL: " + Why);
      return;
    }
    Out.D.Relations.push_back(std::move(E));
  }

  void parseRaces(const std::vector<std::string> &Toks) {
    if (Toks.empty()) {
      error("EXPECT-RACES: missing operand (globals or 'none')");
      return;
    }
    if (Out.D.HasRaceAnswer) {
      error("duplicate EXPECT-RACES directive");
      return;
    }
    Out.D.HasRaceAnswer = true;
    if (Toks.size() == 1 && Toks[0] == "none")
      return;
    for (const std::string &G : Toks) {
      if (!isIdentifier(G) || G == "none") {
        error("EXPECT-RACES: bad global '" + G + "'");
        return;
      }
      for (const std::string &Seen : Out.D.RacyGlobals)
        if (Seen == G) {
          error("EXPECT-RACES: duplicate global '" + G + "'");
          return;
        }
      Out.D.RacyGlobals.push_back(G);
    }
  }

  void parseExit(const std::vector<std::string> &Toks) {
    if (!arity("EXPECT-EXIT", Toks, 1, 1))
      return;
    if (Out.D.ExpectedExit) {
      error("duplicate EXPECT-EXIT directive");
      return;
    }
    std::optional<int64_t> V = parseInt64(Toks[0]);
    if (!V) {
      error("EXPECT-EXIT: bad value '" + Toks[0] + "'");
      return;
    }
    Out.D.ExpectedExit = *V;
  }

  void parseBudget(const std::vector<std::string> &Toks) {
    if (!arity("MAX-RHS-EVALS", Toks, 1, 1))
      return;
    if (Out.D.MaxRhsEvals) {
      error("duplicate MAX-RHS-EVALS directive");
      return;
    }
    std::optional<uint64_t> V = parseUint64(Toks[0]);
    if (!V || *V == 0) {
      error("MAX-RHS-EVALS: bad budget '" + Toks[0] + "'");
      return;
    }
    Out.D.MaxRhsEvals = *V;
  }

  void parseInput(const std::vector<std::string> &Toks) {
    if (Toks.empty()) {
      error("INPUT: missing values");
      return;
    }
    for (const std::string &T : Toks) {
      std::optional<int64_t> V = parseInt64(T);
      if (!V) {
        error("INPUT: bad value '" + T + "'");
        return;
      }
      Out.D.Inputs.push_back(*V);
    }
  }

  std::istringstream In;
  uint32_t LineNo = 0;
  bool SawCode = false;
  bool SawKind = false;
  ParsedDirectives Out;
};

} // namespace

bool CorpusDirectives::cellMatches(std::string_view Cell,
                                   std::string_view Domain,
                                   std::string_view Solver) {
  size_t Slash = Cell.find('/');
  std::string_view Dom = Slash == std::string_view::npos
                             ? std::string_view("*")
                             : Cell.substr(0, Slash);
  std::string_view Sol = Slash == std::string_view::npos
                             ? Cell
                             : Cell.substr(Slash + 1);
  if (Slash == std::string_view::npos && Cell == "*")
    Sol = "*";
  return (Dom == "*" || Dom == Domain) && (Sol == "*" || Sol == Solver);
}

std::optional<uint64_t>
CorpusDirectives::expectedAlarmsFor(std::string_view Domain,
                                    std::string_view Solver) const {
  std::optional<uint64_t> Best;
  int BestScore = -1;
  for (const auto &[Key, Count] : ExpectedAlarms) {
    // Keys are normalized to "dom/sol" by the parser; tolerate the bare
    // "*" shorthand in hand-built tables.
    size_t Slash = Key.find('/');
    std::string_view Dom = Slash == std::string::npos
                               ? std::string_view("*")
                               : std::string_view(Key.data(), Slash);
    std::string_view Sol =
        Slash == std::string::npos
            ? std::string_view("*")
            : std::string_view(Key.data() + Slash + 1, Key.size() - Slash - 1);
    if (Dom != "*" && Dom != Domain)
      continue;
    if (Sol != "*" && Sol != Solver)
      continue;
    int Score = (Dom != "*" ? 2 : 0) + (Sol != "*" ? 1 : 0);
    if (Score > BestScore) {
      BestScore = Score;
      Best = Count;
    }
  }
  return Best;
}

std::string ParsedDirectives::str(const std::string &File) const {
  std::string Out;
  for (const DirectiveError &E : Errors) {
    Out += File + ":" + std::to_string(E.Line) + ": " + E.Message + "\n";
  }
  return Out;
}

ParsedDirectives warrow::corpus::parseCorpusDirectives(
    const std::string &Source) {
  return Parser(Source).run();
}
