//===- engine/instr.h - Solver instrumentation layer ------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's instrumentation layer: the single place where SolverStats
/// accounting, evaluation budgets, and TraceSink emission live. Iteration
/// strategies (engine/strategies/) never touch a raw `TraceSink` or spell
/// an `if (Options.Trace)` guard around an event — they call the helpers
/// here, which are no-ops (one predictable branch) when tracing is off.
/// A hygiene test greps the strategy sources for raw sink usage.
///
/// Two classes:
///  - `TraceEmitter`: a null-guarded facade over the optional sink, one
///    method per event kind. Usable on its own where stats are kept in
///    thread-local counters (the parallel strategy).
///  - `Instrumentation`: stats counters + budget checks + a TraceEmitter,
///    bound to one SolverStats instance for the duration of a run.
///
/// QueueMax convention (see stats.h): strategies report the high-water
/// mark of their *pending-work set* through `noteQueueSize` /
/// `noteSweepSet`; purely recursive strategies report nothing (0).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_INSTR_H
#define WARROW_ENGINE_INSTR_H

#include "solvers/stats.h"
#include "trace/trace.h"

#include <cstddef>
#include <cstdint>

namespace warrow::engine {

/// Null-guarded event emission: each method forwards to the sink when one
/// is attached and vanishes otherwise. Methods mirror the TraceEvent
/// factories one-for-one; strategies never name TraceEvent directly.
class TraceEmitter {
public:
  explicit TraceEmitter(TraceSink *Sink) : Sink(Sink) {}

  /// True when events are being recorded (for strategies that must skip
  /// trace-only bookkeeping like slot maps or discovery orders).
  explicit operator bool() const { return Sink != nullptr; }

  void rhsBegin(uint64_t X) const {
    if (Sink)
      Sink->event(TraceEvent::rhsBegin(X));
  }
  void rhsEnd(uint64_t X, bool FromCache = false) const {
    if (Sink)
      Sink->event(TraceEvent::rhsEnd(X, FromCache));
  }
  template <typename D>
  void update(uint64_t X, const D &Old, const D &Rhs, const D &New) const {
    if (Sink)
      Sink->event(TraceEvent::update(X, Old, Rhs, New));
  }
  void destabilize(uint64_t X, uint64_t Cause) const {
    if (Sink)
      Sink->event(TraceEvent::destabilize(X, Cause));
  }
  void enqueue(uint64_t X) const {
    if (Sink)
      Sink->event(TraceEvent::enqueue(X));
  }
  /// Emits `enqueue` only when \p Fresh — pairs with `IndexedHeap::push`
  /// (and friends) whose return value says whether the push inserted.
  void enqueueIf(bool Fresh, uint64_t X) const {
    if (Fresh && Sink)
      Sink->event(TraceEvent::enqueue(X));
  }
  void dequeue(uint64_t X) const {
    if (Sink)
      Sink->event(TraceEvent::dequeue(X));
  }
  void dependency(uint64_t Reader, uint64_t Read) const {
    if (Sink)
      Sink->event(TraceEvent::dependency(Reader, Read));
  }
  void wideningPoint(uint64_t X) const {
    if (Sink)
      Sink->event(TraceEvent::wideningPoint(X));
  }
  void sideContribution(uint64_t Target, uint64_t From) const {
    if (Sink)
      Sink->event(TraceEvent::sideContribution(Target, From));
  }
  void phaseChange(uint64_t Phase, uint64_t Round = 0) const {
    if (Sink)
      Sink->event(TraceEvent::phaseChange(Phase, Round));
  }

private:
  TraceSink *Sink;
};

/// Stats accounting + budget checks + trace emission for one solver run.
/// Strategies own a SolverStats (usually inside their result object) and
/// bind an Instrumentation to it; every counter bump goes through here so
/// the counters' meaning is defined once (stats.h) and audited once
/// (stats_audit_test.cpp).
class Instrumentation {
public:
  Instrumentation(SolverStats &Stats, const SolverOptions &Options)
      : Stats(Stats), MaxRhsEvals(Options.MaxRhsEvals), Trace(Options.Trace) {}

  const TraceEmitter &trace() const { return Trace; }
  bool tracing() const { return static_cast<bool>(Trace); }

  /// True when the evaluation budget is exhausted (strategies without an
  /// RHS cache: every evaluation is a real evaluation).
  bool budgetExhausted() const { return Stats.RhsEvals >= MaxRhsEvals; }

  /// Budget check for caching strategies: cache hits count against the
  /// budget too, so the hit path cannot loop past MaxRhsEvals for free on
  /// a divergent system. On convergent runs hits replace evals
  /// one-for-one, so the sum equals the uncached eval count and
  /// `Converged` is bit-identical either way.
  bool budgetExhaustedWithCache() const {
    return Stats.RhsEvals + Stats.RhsCacheHits >= MaxRhsEvals;
  }

  void chargeEval() { ++Stats.RhsEvals; }
  void chargeUpdate() { ++Stats.Updates; }
  void chargeCacheHit() { ++Stats.RhsCacheHits; }
  void chargeCacheMiss() { ++Stats.RhsCacheMisses; }

  /// Records the current size of a queue-driven strategy's pending set
  /// (worklist / priority queue); QueueMax keeps the high-water mark.
  void noteQueueSize(size_t N) {
    if (N > Stats.QueueMax)
      Stats.QueueMax = N;
  }
  /// Same convention for sweep-driven strategies, whose pending set is
  /// the swept unknown set itself (all of it is pending every round).
  void noteSweepSet(size_t N) { noteQueueSize(N); }

private:
  SolverStats &Stats;
  uint64_t MaxRhsEvals;
  TraceEmitter Trace;
};

} // namespace warrow::engine

#endif // WARROW_ENGINE_INSTR_H
