//===- engine/instr.h - Solver instrumentation layer ------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's instrumentation layer: the single place where SolverStats
/// accounting, evaluation budgets, and TraceSink emission live. Iteration
/// strategies (engine/strategies/) never touch a raw `TraceSink` or spell
/// an `if (Options.Trace)` guard around an event — they call the helpers
/// here, which are no-ops (one predictable branch) when tracing is off.
/// A hygiene test greps the strategy sources for raw sink usage.
///
/// Four classes:
///  - `TraceEmitter`: a null-guarded facade over the optional sink, one
///    method per event kind. Usable on its own where stats are kept in
///    thread-local counters (the parallel strategies).
///  - `Instrumentation`: stats counters + budget checks + a TraceEmitter,
///    bound to one SolverStats instance for the duration of a run.
///  - `ShardedStats`: cache-line-padded per-worker SolverStats shards for
///    parallel strategies — each worker binds an Instrumentation to its
///    own shard (plain increments, no atomics on the hot path) and the
///    driver sums the shards once at the end of the run.
///  - `BudgetGate`: the one shared (atomic) piece of parallel
///    instrumentation — workers publish charge batches at component
///    boundaries and probe exhaustion with a single relaxed load.
///
/// QueueMax convention (see stats.h): strategies report the high-water
/// mark of their *pending-work set* through `noteQueueSize` /
/// `noteSweepSet`; purely recursive strategies report nothing (0).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_INSTR_H
#define WARROW_ENGINE_INSTR_H

#include "solvers/stats.h"
#include "trace/trace.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace warrow::engine {

/// Null-guarded event emission: each method forwards to the sink when one
/// is attached and vanishes otherwise. Methods mirror the TraceEvent
/// factories one-for-one; strategies never name TraceEvent directly.
class TraceEmitter {
public:
  explicit TraceEmitter(TraceSink *Sink) : Sink(Sink) {}

  /// True when events are being recorded (for strategies that must skip
  /// trace-only bookkeeping like slot maps or discovery orders).
  explicit operator bool() const { return Sink != nullptr; }

  void rhsBegin(uint64_t X) const {
    if (Sink)
      Sink->event(TraceEvent::rhsBegin(X));
  }
  void rhsEnd(uint64_t X, bool FromCache = false) const {
    if (Sink)
      Sink->event(TraceEvent::rhsEnd(X, FromCache));
  }
  template <typename D>
  void update(uint64_t X, const D &Old, const D &Rhs, const D &New) const {
    if (Sink)
      Sink->event(TraceEvent::update(X, Old, Rhs, New));
  }
  void destabilize(uint64_t X, uint64_t Cause) const {
    if (Sink)
      Sink->event(TraceEvent::destabilize(X, Cause));
  }
  void enqueue(uint64_t X) const {
    if (Sink)
      Sink->event(TraceEvent::enqueue(X));
  }
  /// Emits `enqueue` only when \p Fresh — pairs with `IndexedHeap::push`
  /// (and friends) whose return value says whether the push inserted.
  void enqueueIf(bool Fresh, uint64_t X) const {
    if (Fresh && Sink)
      Sink->event(TraceEvent::enqueue(X));
  }
  void dequeue(uint64_t X) const {
    if (Sink)
      Sink->event(TraceEvent::dequeue(X));
  }
  void dependency(uint64_t Reader, uint64_t Read) const {
    if (Sink)
      Sink->event(TraceEvent::dependency(Reader, Read));
  }
  void wideningPoint(uint64_t X) const {
    if (Sink)
      Sink->event(TraceEvent::wideningPoint(X));
  }
  void sideContribution(uint64_t Target, uint64_t From) const {
    if (Sink)
      Sink->event(TraceEvent::sideContribution(Target, From));
  }
  void phaseChange(uint64_t Phase, uint64_t Round = 0) const {
    if (Sink)
      Sink->event(TraceEvent::phaseChange(Phase, Round));
  }

private:
  TraceSink *Sink;
};

/// Stats accounting + budget checks + trace emission for one solver run.
/// Strategies own a SolverStats (usually inside their result object) and
/// bind an Instrumentation to it; every counter bump goes through here so
/// the counters' meaning is defined once (stats.h) and audited once
/// (stats_audit_test.cpp).
class Instrumentation {
public:
  Instrumentation(SolverStats &Stats, const SolverOptions &Options)
      : Stats(Stats), MaxRhsEvals(Options.MaxRhsEvals), Trace(Options.Trace) {}

  const TraceEmitter &trace() const { return Trace; }
  bool tracing() const { return static_cast<bool>(Trace); }

  /// True when the evaluation budget is exhausted (strategies without an
  /// RHS cache: every evaluation is a real evaluation).
  bool budgetExhausted() const { return Stats.RhsEvals >= MaxRhsEvals; }

  /// Budget check for caching strategies: cache hits count against the
  /// budget too, so the hit path cannot loop past MaxRhsEvals for free on
  /// a divergent system. On convergent runs hits replace evals
  /// one-for-one, so the sum equals the uncached eval count and
  /// `Converged` is bit-identical either way.
  bool budgetExhaustedWithCache() const {
    return Stats.RhsEvals + Stats.RhsCacheHits >= MaxRhsEvals;
  }

  /// Rebinds the evaluation ceiling mid-run. The parallel driver uses
  /// this to reconcile a per-component engine's private budget with the
  /// shared BudgetGate between runs; sequential strategies never call it.
  void setMaxRhsEvals(uint64_t Max) { MaxRhsEvals = Max; }

  void chargeEval() { ++Stats.RhsEvals; }
  void chargeUpdate() { ++Stats.Updates; }
  void chargeCacheHit() { ++Stats.RhsCacheHits; }
  void chargeCacheMiss() { ++Stats.RhsCacheMisses; }

  /// Records the current size of a queue-driven strategy's pending set
  /// (worklist / priority queue); QueueMax keeps the high-water mark.
  void noteQueueSize(size_t N) {
    if (N > Stats.QueueMax)
      Stats.QueueMax = N;
  }
  /// Same convention for sweep-driven strategies, whose pending set is
  /// the swept unknown set itself (all of it is pending every round).
  void noteSweepSet(size_t N) { noteQueueSize(N); }

private:
  SolverStats &Stats;
  uint64_t MaxRhsEvals;
  TraceEmitter Trace;
};

/// Rewrites the dense unknown ids of a nested engine's events into the
/// enclosing run's id space before forwarding to the shared sink. The
/// parallel local strategy runs one sequential engine per component,
/// each numbering its unknowns from 0; this sink translates those local
/// slots into global discovery slots so a recorded parallel trace is
/// directly comparable (update multisets, dependency edges) with a
/// sequential one. The remap callback runs on the emitting worker's
/// thread; the downstream sink must tolerate concurrent `event` calls,
/// which is already the TraceSink contract.
class IdRemapSink : public TraceSink {
public:
  IdRemapSink(TraceSink *Out, std::function<uint64_t(uint64_t)> Remap)
      : Out(Out), Remap(std::move(Remap)) {}

  void event(TraceEvent E) override {
    if (E.Kind != TraceEventKind::PhaseChange) {
      E.Unknown = Remap(E.Unknown);
      if (E.Kind == TraceEventKind::Destabilize ||
          E.Kind == TraceEventKind::DependencyRecord ||
          E.Kind == TraceEventKind::SideContribution)
        E.Aux = Remap(E.Aux);
    }
    Out->event(E);
  }

private:
  TraceSink *Out;
  std::function<uint64_t(uint64_t)> Remap;
};

/// Per-worker SolverStats shards for parallel strategies. Each worker
/// binds an `Instrumentation` to `shard(workerIndex)` and bumps plain
/// counters — no atomics, no false sharing (shards are padded to a
/// cache line). `sumInto` merges once at the end of the run: additive
/// counters (RhsEvals, Updates, RhsCacheHits, RhsCacheMisses) are
/// summed, QueueMax is maxed (the per-component convention from
/// stats.h), and VarsSeen / Converged are left for the driver, which
/// knows them centrally.
class ShardedStats {
public:
  explicit ShardedStats(unsigned Shards) : Shards(Shards) {}

  SolverStats &shard(unsigned I) { return Shards[I].Stats; }
  unsigned size() const { return static_cast<unsigned>(Shards.size()); }

  void sumInto(SolverStats &Out) const {
    for (const Padded &P : Shards) {
      Out.RhsEvals += P.Stats.RhsEvals;
      Out.Updates += P.Stats.Updates;
      Out.RhsCacheHits += P.Stats.RhsCacheHits;
      Out.RhsCacheMisses += P.Stats.RhsCacheMisses;
      if (P.Stats.QueueMax > Out.QueueMax)
        Out.QueueMax = P.Stats.QueueMax;
    }
  }

private:
  struct alignas(64) Padded {
    SolverStats Stats;
  };
  std::vector<Padded> Shards;
};

/// Shared evaluation-budget gate for parallel strategies. Workers charge
/// evaluations to their own shard and publish the batch here at component
/// boundaries; the in-loop exhaustion probe is one relaxed load plus the
/// not-yet-published local delta. The gate may therefore trip a batch
/// late — the budget is a divergence backstop, not an exact limit, and
/// `Converged = false` is still reported deterministically because every
/// worker applies the same check to the same published prefix.
class BudgetGate {
public:
  explicit BudgetGate(uint64_t Max) : Max(Max) {}

  /// Adds a finished batch of charges (evals + cache hits) to the
  /// published total.
  void publish(uint64_t Delta) {
    Charged.fetch_add(Delta, std::memory_order_relaxed);
  }

  /// True when published charges plus the caller's unpublished
  /// \p LocalDelta meet the ceiling.
  bool exhausted(uint64_t LocalDelta = 0) const {
    return Charged.load(std::memory_order_relaxed) + LocalDelta >= Max;
  }

  uint64_t ceiling() const { return Max; }

  /// Budget left under the ceiling given the published charges (0 when
  /// exhausted; saturating, never underflows).
  uint64_t remaining() const {
    uint64_t C = Charged.load(std::memory_order_relaxed);
    return C >= Max ? 0 : Max - C;
  }

private:
  std::atomic<uint64_t> Charged{0};
  uint64_t Max;
};

} // namespace warrow::engine

#endif // WARROW_ENGINE_INSTR_H
