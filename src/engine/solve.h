//===- engine/solve.h - Strategy dispatch for the engine --------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed and by-name dispatch over the engine's iteration strategies.
/// `solveDense` / `solveLocal` / `solveSide` switch a StrategyKind to the
/// corresponding `run*` strategy; the `*ByName` wrappers resolve a
/// registry name first (callers validate names with `findSolver` — the
/// by-name entry points abort on unknown or capability-mismatched names).
///
/// Fixed-operator strategies (the two-phase drivers) ignore the \p Combine
/// argument: their ▽-then-△ operator pair is the strategy.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_SOLVE_H
#define WARROW_ENGINE_SOLVE_H

#include "engine/registry.h"
#include "engine/strategies/local_round_robin.h"
#include "engine/strategies/parallel_slr.h"
#include "engine/strategies/priority_worklist.h"
#include "engine/strategies/recursive_descent.h"
#include "engine/strategies/round_robin.h"
#include "engine/strategies/scc_parallel.h"
#include "engine/strategies/slr.h"
#include "engine/strategies/structured_round_robin.h"
#include "engine/strategies/two_phase.h"
#include "engine/strategies/two_phase_local.h"
#include "engine/strategies/worklist.h"
#include "graph/dependency_graph.h"
#include "graph/order.h"
#include "graph/scc.h"

#include <cassert>
#include <cstdlib>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace warrow::engine {

/// Strategy-specific knobs for dense dispatch; defaults reproduce the
/// historical entry points.
struct DenseStrategyArgs {
  /// Explicit priority order for OrderedPriorityWorklist; when null, a
  /// condensation-consistent topological rank is computed on the fly.
  const std::vector<uint32_t> *Rank = nullptr;
  /// Thread configuration for SccParallel.
  ParallelOptions Parallel;
  /// Descending-round bound for the two-phase drivers.
  unsigned NarrowRounds = 1;
};

/// Strategy-specific knobs for local / side-effecting dispatch.
struct LocalStrategyArgs {
  /// Descending-sweep bound for the two-phase baselines.
  unsigned MaxNarrowRounds = 8;
  /// Localized widening-point combine for SlrPlus (ignored elsewhere;
  /// the TwoPhaseLocalized strategy implies it for its ascending phase).
  bool LocalizedCombine = false;
};

/// Runs dense strategy \p Strategy on \p System.
template <typename D, typename C>
SolveResult<D> solveDense(StrategyKind Strategy, const DenseSystem<D> &System,
                          C &&Combine, const SolverOptions &Options = {},
                          const DenseStrategyArgs &Args = {}) {
  switch (Strategy) {
  case StrategyKind::RoundRobin:
    return runRoundRobin(System, std::forward<C>(Combine), Options);
  case StrategyKind::StructuredRoundRobin:
    return runStructuredRoundRobin(System, std::forward<C>(Combine), Options);
  case StrategyKind::WorklistLifo:
    return runWorklist(System, std::forward<C>(Combine), Options,
                       WorklistDiscipline::Lifo);
  case StrategyKind::WorklistFifo:
    return runWorklist(System, std::forward<C>(Combine), Options,
                       WorklistDiscipline::Fifo);
  case StrategyKind::PriorityWorklist:
    return runPriorityWorklist(System, std::forward<C>(Combine), Options);
  case StrategyKind::OrderedPriorityWorklist: {
    if (Args.Rank)
      return runPriorityWorklist(System, std::forward<C>(Combine), Options,
                                 Args.Rank);
    const std::vector<uint32_t> Rank =
        topologicalRank(condense(extractDependencyGraph(System)));
    return runPriorityWorklist(System, std::forward<C>(Combine), Options,
                               &Rank);
  }
  case StrategyKind::SccParallel:
    return runSccParallel(System, std::forward<C>(Combine), Args.Parallel,
                          Options);
  case StrategyKind::TwoPhaseSW:
    return runTwoPhaseSW(System, Options, Args.NarrowRounds);
  case StrategyKind::TwoPhaseRR:
    return runTwoPhaseRR(System, Options, Args.NarrowRounds);
  default:
    assert(false && "strategy does not solve dense systems");
    std::abort();
  }
}

/// Runs local strategy \p Strategy for \p X0 on \p System.
template <typename V, typename D, typename C>
PartialSolution<V, D> solveLocal(StrategyKind Strategy,
                                 const LocalSystem<V, D> &System, const V &X0,
                                 C &&Combine, const SolverOptions &Options = {},
                                 const LocalStrategyArgs &Args = {}) {
  switch (Strategy) {
  case StrategyKind::LocalRoundRobin:
    return runLocalRoundRobin(System, X0, std::forward<C>(Combine), Options);
  case StrategyKind::RecursiveDescent:
    return runRecursiveDescent(System, X0, std::forward<C>(Combine), Options);
  case StrategyKind::Slr: {
    SlrEngine<V, D, std::decay_t<C>, /*WithSide=*/false> Solver(
        System, std::forward<C>(Combine), Options);
    return Solver.solveFor(X0);
  }
  case StrategyKind::TwoPhaseLocal:
    return runTwoPhaseLocal(System, X0, Options, Args.MaxNarrowRounds,
                            /*LocalizedAscending=*/false);
  case StrategyKind::TwoPhaseLocalized:
    return runTwoPhaseLocal(System, X0, Options, Args.MaxNarrowRounds,
                            /*LocalizedAscending=*/true);
  default:
    assert(false && "strategy does not solve local systems");
    std::abort();
  }
}

/// Runs side-effecting strategy \p Strategy for \p X0 on \p System.
template <typename V, typename D, typename C>
PartialSolution<V, D> solveSide(StrategyKind Strategy,
                                const SideEffectingSystem<V, D> &System,
                                const V &X0, C &&Combine,
                                const SolverOptions &Options = {},
                                const LocalStrategyArgs &Args = {}) {
  switch (Strategy) {
  case StrategyKind::SlrPlus: {
    SlrEngine<V, D, std::decay_t<C>, /*WithSide=*/true> Solver(
        System, std::forward<C>(Combine), Options, Args.LocalizedCombine);
    return Solver.solveFor(X0);
  }
  case StrategyKind::TwoPhaseLocal:
    return runTwoPhaseSide(System, X0, Options, Args.MaxNarrowRounds,
                           /*LocalizedAscending=*/false);
  case StrategyKind::TwoPhaseLocalized:
    return runTwoPhaseSide(System, X0, Options, Args.MaxNarrowRounds,
                           /*LocalizedAscending=*/true);
  case StrategyKind::ParallelSlrPlus:
    return runParallelSlrPlus(System, X0, std::forward<C>(Combine), Options,
                              Args.LocalizedCombine);
  case StrategyKind::ParallelTwoPhase:
    return runParallelTwoPhaseSide(System, X0, Options, Args.MaxNarrowRounds);
  default:
    assert(false && "strategy does not solve side-effecting systems");
    std::abort();
  }
}

namespace detail {
inline const SolverInfo &resolveOrDie(std::string_view Name,
                                      SolverCaps Required) {
  const SolverInfo *Info = findSolver(Name);
  assert(Info && "unknown solver name — validate with findSolver first");
  if (!Info || !Info->hasCap(Required))
    std::abort();
  return *Info;
}
} // namespace detail

/// Registry-name dispatch for dense systems. \p Name must resolve to a
/// CapDense entry (case-insensitive, so bench labels like "RR" work).
template <typename D, typename C>
SolveResult<D> solveDenseByName(std::string_view Name,
                                const DenseSystem<D> &System, C &&Combine,
                                const SolverOptions &Options = {},
                                const DenseStrategyArgs &Args = {}) {
  return solveDense(detail::resolveOrDie(Name, CapDense).Strategy, System,
                    std::forward<C>(Combine), Options, Args);
}

/// Registry-name dispatch for local systems (CapLocal entries).
template <typename V, typename D, typename C>
PartialSolution<V, D> solveLocalByName(std::string_view Name,
                                       const LocalSystem<V, D> &System,
                                       const V &X0, C &&Combine,
                                       const SolverOptions &Options = {},
                                       const LocalStrategyArgs &Args = {}) {
  return solveLocal(detail::resolveOrDie(Name, CapLocal).Strategy, System, X0,
                    std::forward<C>(Combine), Options, Args);
}

/// Registry-name dispatch for side-effecting systems (CapSideEffecting).
template <typename V, typename D, typename C>
PartialSolution<V, D> solveSideByName(std::string_view Name,
                                      const SideEffectingSystem<V, D> &System,
                                      const V &X0, C &&Combine,
                                      const SolverOptions &Options = {},
                                      const LocalStrategyArgs &Args = {}) {
  return solveSide(detail::resolveOrDie(Name, CapSideEffecting).Strategy,
                   System, X0, std::forward<C>(Combine), Options, Args);
}

} // namespace warrow::engine

#endif // WARROW_ENGINE_SOLVE_H
