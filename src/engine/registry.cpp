//===- engine/registry.cpp - Runtime solver registry ----------------------==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/registry.h"

namespace warrow::engine {

const std::vector<SolverInfo> &solverRegistry() {
  static const std::vector<SolverInfo> Registry = {
      // --- Dense generic solvers (operator supplied by the caller) ------
      {"rr", "round-robin sweeps (paper Fig. 1)", StrategyKind::RoundRobin,
       OperatorKind::Parametric, CapDense},
      {"srr", "structured round-robin (paper Fig. 3, Theorem 1)",
       StrategyKind::StructuredRoundRobin, OperatorKind::Parametric,
       CapDense},
      {"w", "worklist, LIFO extraction (paper Fig. 2)",
       StrategyKind::WorklistLifo, OperatorKind::Parametric, CapDense},
      {"w-fifo", "worklist, FIFO extraction (paper Fig. 2)",
       StrategyKind::WorklistFifo, OperatorKind::Parametric, CapDense},
      {"sw", "structured worklist / priority queue (paper Fig. 4)",
       StrategyKind::PriorityWorklist, OperatorKind::Parametric, CapDense},
      {"sw-ordered", "structured worklist under an explicit priority order",
       StrategyKind::OrderedPriorityWorklist, OperatorKind::Parametric,
       CapDense},
      {"sw-parallel", "structured worklist, SCC-parallel over the "
                      "condensation",
       StrategyKind::SccParallel, OperatorKind::Parametric,
       CapDense | CapParallel},
      // --- Dense two-phase drivers (fixed ▽-then-△ operator pair) -------
      {"two-phase-dense", "classical widen-then-narrow over SW",
       StrategyKind::TwoPhaseSW, OperatorKind::WidenNarrowPhases,
       CapDense | CapFixedOperator},
      {"two-phase-rr", "widen-then-narrow over round-robin sweeps",
       StrategyKind::TwoPhaseRR, OperatorKind::WidenNarrowPhases,
       CapDense | CapFixedOperator | CapNew},
      // --- Local / side-effecting solvers -------------------------------
      {"lrr", "local round-robin over the growing known set (Sec. 5)",
       StrategyKind::LocalRoundRobin, OperatorKind::Parametric, CapLocal},
      {"rld", "recursive local descent, the repaired baseline (Fig. 5)",
       StrategyKind::RecursiveDescent, OperatorKind::Parametric, CapLocal},
      {"slr", "structured local recursion (paper Fig. 6, Theorem 3)",
       StrategyKind::Slr, OperatorKind::Parametric, CapLocal},
      {"slr-plus", "SLR over side-effecting constraints (paper Sec. 6)",
       StrategyKind::SlrPlus, OperatorKind::Parametric, CapSideEffecting},
      {"parallel-slr-plus", "work-stealing SLR+ over the discovered "
                            "condensation (sharded side effects)",
       StrategyKind::ParallelSlrPlus, OperatorKind::Parametric,
       CapSideEffecting | CapParallel | CapNew},
      {"parallel-two-phase", "widen-then-narrow over ascending parallel "
                             "SLR+ (frozen globals)",
       StrategyKind::ParallelTwoPhase, OperatorKind::WidenNarrowPhases,
       CapSideEffecting | CapFixedOperator | CapParallel | CapNew},
      // --- Analysis backends (operator baked in, warrow-analyze names) ---
      {"warrow", "SLR+ with the combined ⊟ operator (degrading ⊟ₖ; "
                 "threshold-aware)",
       StrategyKind::SlrPlus, OperatorKind::Warrow,
       CapSideEffecting | CapFixedOperator | CapAnalysis},
      {"widen", "SLR+ with plain widening ▽ only",
       StrategyKind::SlrPlus, OperatorKind::Widen,
       CapSideEffecting | CapFixedOperator | CapAnalysis},
      {"two-phase", "classical widen-then-narrow over ascending SLR+ "
                    "(frozen globals)",
       StrategyKind::TwoPhaseLocal, OperatorKind::WidenNarrowPhases,
       CapLocal | CapSideEffecting | CapFixedOperator | CapAnalysis},
      {"two-phase-localized", "widen-then-narrow with localized phase-1 "
                              "widening points",
       StrategyKind::TwoPhaseLocalized, OperatorKind::WidenNarrowPhases,
       CapLocal | CapSideEffecting | CapFixedOperator | CapAnalysis |
           CapNew},
      {"parallel-warrow", "work-stealing parallel SLR+ with the combined "
                          "⊟ operator (degrading ⊟ₖ)",
       StrategyKind::ParallelSlrPlus, OperatorKind::Warrow,
       CapSideEffecting | CapFixedOperator | CapParallel | CapAnalysis |
           CapNew},
  };
  return Registry;
}

static bool equalsLower(std::string_view A, std::string_view B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    char CA = A[I], CB = B[I];
    if (CA >= 'A' && CA <= 'Z')
      CA = static_cast<char>(CA - 'A' + 'a');
    if (CB >= 'A' && CB <= 'Z')
      CB = static_cast<char>(CB - 'A' + 'a');
    if (CA != CB)
      return false;
  }
  return true;
}

const SolverInfo *findSolver(std::string_view Name) {
  for (const SolverInfo &Info : solverRegistry())
    if (equalsLower(Info.Name, Name))
      return &Info;
  return nullptr;
}

std::vector<std::string> solverNames() {
  std::vector<std::string> Names;
  Names.reserve(solverRegistry().size());
  for (const SolverInfo &Info : solverRegistry())
    Names.emplace_back(Info.Name);
  return Names;
}

std::string solverListing() {
  std::string Out;
  for (const SolverInfo &Info : solverRegistry()) {
    Out += Info.Name;
    for (size_t I = std::string_view(Info.Name).size(); I < 22; ++I)
      Out += ' ';
    Out += Info.Description;
    std::string Tags;
    auto Tag = [&](SolverCaps Cap, const char *Text) {
      if (Info.hasCap(Cap)) {
        if (!Tags.empty())
          Tags += ',';
        Tags += Text;
      }
    };
    Tag(CapDense, "dense");
    Tag(CapLocal, "local");
    Tag(CapSideEffecting, "side-effecting");
    Tag(CapParallel, "parallel");
    Tag(CapAnalysis, "analysis");
    Tag(CapNew, "new");
    if (!Tags.empty()) {
      Out += "  [";
      Out += Tags;
      Out += ']';
    }
    Out += '\n';
  }
  return Out;
}

} // namespace warrow::engine
