//===- engine/strategies/structured_round_robin.h - SRR (Fig. 3) *- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured round-robin strategy SRR of the paper's Figure 3:
///
///     void solve i {
///       if (i = 0) return;
///       solve (i-1);
///       new <- sigma[x_i] ⊕ f_i(sigma);
///       if (sigma[x_i] != new) { sigma[x_i] <- new; solve i; }
///     }
///     // started as: solve n
///
/// SRR iterates on unknown x_i until stabilization, re-solving all smaller
/// unknowns before each evaluation. Theorem 1: with ⊕ = ⊟ and monotonic
/// right-hand sides SRR always terminates, and for ⊕ = ⊔ over a lattice of
/// height h it needs at most `n + h/2 * n(n+1)` evaluations.
///
/// The implementation is an iterative reformulation of the recursion
/// (which otherwise nests up to n*h frames deep): maintain a cursor i;
/// evaluate x_i; on change restart the cursor at 1, else advance. The
/// invariant is identical — whenever x_i is evaluated, all x_j with j < i
/// satisfy sigma[x_j] = sigma[x_j] ⊕ f_j(sigma) — and the evaluation
/// sequences coincide (verified against the paper's Example 3 trace).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STRATEGIES_STRUCTURED_ROUND_ROBIN_H
#define WARROW_ENGINE_STRATEGIES_STRUCTURED_ROUND_ROBIN_H

#include "engine/dense_core.h"

namespace warrow::engine {

/// Runs structured round-robin iteration with combine operator \p Combine.
template <typename D, typename C>
SolveResult<D> runStructuredRoundRobin(const DenseSystem<D> &System,
                                       C &&Combine,
                                       const SolverOptions &Options = {}) {
  DenseCore<D> Core(System, Options);
  // The pending set of a sweep strategy is the whole swept universe.
  Core.instr().noteSweepSet(System.size());

  size_t I = 0; // Cursor over 0-based unknown indices.
  while (I < System.size()) {
    if (Core.outOfBudget())
      return Core.take();
    Var X = static_cast<Var>(I);
    if (Core.step(X, Combine) == StepOutcome::Unchanged) {
      ++I;
      continue;
    }
    I = 0; // Re-stabilize all smaller unknowns, then revisit X.
  }
  return Core.take();
}

} // namespace warrow::engine

#endif // WARROW_ENGINE_STRATEGIES_STRUCTURED_ROUND_ROBIN_H
