//===- engine/strategies/scc_parallel.h - SCC-parallel SW -------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured worklist strategy SW (Fig. 4), parallelized over the
/// condensation of the static dependency graph:
///
///  1. extract the dependency graph, run Tarjan, obtain the condensation
///     DAG with per-component predecessor ("ready") counts;
///  2. a component whose predecessors have all stabilized is launched on
///     a thread pool; independent ready components run concurrently;
///  3. inside a component, plain sequential SW runs over the component's
///     members with the *global* variable ordering as priority — exactly
///     the iteration sequential SW performs once every unknown the
///     component reads from has reached its final value.
///
/// Determinism contract: right-hand sides may only read declared
/// dependencies, so a component's equations read (a) other members,
/// iterated here in the unchanged SW priority order, and (b) members of
/// predecessor components, which are final before the component starts.
/// Component-local iteration from the initial assignment with fixed
/// inputs is deterministic, so the computed values are independent of
/// the launch interleaving — the thread count changes wall-clock time,
/// never a single bit of the answer (asserted across the fuzz corpus by
/// tests/parallel_sw_test.cpp).
///
/// Equality with sequential SW: the result is bit-identical to
/// `solveOrderedSW` under any condensation-consistent variable order
/// (graph/order.h), because such an order makes sequential SW stabilize
/// each component before popping a successor's member — the exact
/// schedule run here, minus the concurrency. When the raw variable ids
/// already respect the condensation (chains, manyComponentSystem, every
/// CFG numbered in reverse postorder) that is plain `solveSW`. For
/// arbitrary numbering plain SW may interleave components and, ⊟ being
/// history-sensitive, settle on a different (equally sound) post
/// solution. The per-component iteration is verbatim SW, so Theorem 2's
/// termination and complexity bounds carry over component-wise; see
/// DESIGN.md "Parallel solving".
///
/// Memory model: a worker publishes its component's slice of sigma by
/// the release fetch_sub on each successor's ready count; the worker
/// that drops a count to zero acquires it before launching the
/// successor, so cross-component reads are race-free without any lock
/// on sigma itself.
///
/// This strategy keeps per-worker local counters and merges them into
/// atomics at component end, so it uses the instrumentation layer's
/// TraceEmitter directly rather than a stats-bound Instrumentation.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STRATEGIES_SCC_PARALLEL_H
#define WARROW_ENGINE_STRATEGIES_SCC_PARALLEL_H

#include "engine/instr.h"
#include "eqsys/dense_system.h"
#include "graph/scc.h"
#include "support/indexed_heap.h"
#include "support/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace warrow {

/// Knobs of the parallel solvers. `Threads` here overrides the shared
/// `SolverOptions::Threads` knob (benches pinning a sweep point); most
/// callers leave it 0 and set the SolverOptions field — or neither, for
/// one worker per hardware thread.
struct ParallelOptions {
  /// Worker threads; 0 = defer to SolverOptions::Threads, then to
  /// hardware concurrency.
  unsigned Threads = 0;

  unsigned effectiveThreads(unsigned Fallback = 0) const {
    if (Threads != 0)
      return Threads;
    if (Fallback != 0)
      return Fallback;
    unsigned HW = std::thread::hardware_concurrency();
    return HW == 0 ? 1 : HW;
  }
};

namespace engine {
namespace detail {

/// Reusable per-component scratch: the priority heap and the component-
/// membership guard. Pooled so that solving a million tiny components
/// performs two allocations per *worker*, not per component.
struct SwScratch {
  IndexedHeap<> Queue;
};

/// Lock-protected free list of scratch blocks (components are coarse;
/// one lock per component is noise).
class ScratchPool {
public:
  explicit ScratchPool(size_t Universe) : Universe(Universe) {}

  std::unique_ptr<SwScratch> acquire() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!Free.empty()) {
        std::unique_ptr<SwScratch> S = std::move(Free.back());
        Free.pop_back();
        return S;
      }
    }
    auto S = std::make_unique<SwScratch>();
    S->Queue.resizeUniverse(Universe);
    return S;
  }

  void release(std::unique_ptr<SwScratch> S) {
    S->Queue.clear();
    std::lock_guard<std::mutex> Lock(Mutex);
    Free.push_back(std::move(S));
  }

private:
  size_t Universe;
  std::mutex Mutex;
  std::vector<std::unique_ptr<SwScratch>> Free;
};

} // namespace detail

/// Runs SW in parallel over the condensation of \p System's dependency
/// graph. \p Combine is copied once per component, so stateful operators
/// (whose state is keyed per unknown, like DegradingWarrowCombine) stay
/// correct: every unknown lives in exactly one component.
///
/// Pass \p POpts.Threads = 1 for a single worker (still scheduled via
/// the condensation) — useful to separate scheduling effects from
/// parallelism in benchmarks.
template <typename D, typename C>
SolveResult<D> runSccParallel(const DenseSystem<D> &System, C Combine,
                              const ParallelOptions &POpts = {},
                              const SolverOptions &Options = {}) {
  SolveResult<D> Result;
  Result.Sigma = System.initialAssignment();
  Result.Stats.VarsSeen = System.size();
  if (System.size() == 0)
    return Result;

  const Condensation Cond = condense(extractDependencyGraph(System));
  const size_t NumComps = Cond.numComponents();

  // Shared mutable state. Distinct components touch disjoint sigma
  // slots; cross-component reads are ordered by the ready-count
  // release/acquire pairs (see file comment).
  std::vector<D> &Sigma = Result.Sigma;
  std::atomic<uint64_t> RhsEvals{0};
  std::atomic<uint64_t> Updates{0};
  std::atomic<uint64_t> QueueMax{0};
  std::atomic<bool> Failed{false};
  std::unique_ptr<std::atomic<uint32_t>[]> Ready(
      new std::atomic<uint32_t>[NumComps]);
  for (size_t I = 0; I < NumComps; ++I)
    Ready[I].store(Cond.PredCount[I], std::memory_order_relaxed);

  detail::ScratchPool Scratches(System.size());
  std::mutex TraceMutex; // Trace order is schedule-dependent by nature.
  TraceEmitter Emit(Options.Trace);

  // Solves one component with verbatim SW restricted to its members.
  auto SolveComponent = [&](CompId Comp) {
    if (Failed.load(std::memory_order_relaxed))
      return;
    const std::vector<uint32_t> &Members = Cond.Members[Comp];
    std::unique_ptr<detail::SwScratch> Scratch = Scratches.acquire();
    IndexedHeap<> &Queue = Scratch->Queue;
    C LocalCombine = Combine;
    uint64_t LocalEvals = 0, LocalUpdates = 0, LocalQueueMax = 0;

    Var Current = 0; // Unknown under evaluation, for dependency events.
    auto Get = [&Sigma, &Emit, &Current](Var Y) {
      Emit.dependency(Current, Y);
      return Sigma[Y];
    };
    for (uint32_t M : Members)
      Emit.enqueueIf(Queue.push(M), M);
    while (!Queue.empty()) {
      if (RhsEvals.load(std::memory_order_relaxed) + LocalEvals >=
          Options.MaxRhsEvals) {
        Failed.store(true, std::memory_order_relaxed);
        Queue.clear();
        break;
      }
      Var X = Queue.pop();
      ++LocalEvals;
      if (Emit)
        Current = X;
      Emit.dequeue(X);
      Emit.rhsBegin(X);
      D Rhs = System.eval(X, Get);
      Emit.rhsEnd(X);
      D New = LocalCombine(X, Sigma[X], Rhs);
      if (Sigma[X] == New)
        continue;
      Emit.update(X, Sigma[X], Rhs, New);
      Sigma[X] = std::move(New);
      ++LocalUpdates;
      if (Options.RecordTrace) {
        std::lock_guard<std::mutex> Lock(TraceMutex);
        Result.Trace.push_back({X, Sigma[X]});
      }
      if (Emit) {
        Emit.destabilize(X, X);
        for (Var Y : System.influenced(X))
          if (Cond.CompOf[Y] == Comp)
            Emit.destabilize(Y, X);
      }
      // Non-idempotent ⊕ precaution, as in Fig. 4.
      Emit.enqueueIf(Queue.push(X), X);
      for (Var Y : System.influenced(X))
        if (Cond.CompOf[Y] == Comp)
          Emit.enqueueIf(Queue.push(Y), Y);
      if (Queue.size() > LocalQueueMax)
        LocalQueueMax = Queue.size();
    }

    RhsEvals.fetch_add(LocalEvals, std::memory_order_relaxed);
    Updates.fetch_add(LocalUpdates, std::memory_order_relaxed);
    uint64_t Seen = QueueMax.load(std::memory_order_relaxed);
    while (Seen < LocalQueueMax &&
           !QueueMax.compare_exchange_weak(Seen, LocalQueueMax,
                                           std::memory_order_relaxed))
      ;
    Scratches.release(std::move(Scratch));
  };

  ThreadPool Pool(POpts.effectiveThreads(Options.Threads));
  // The recursive launcher: finish a component, release its successors.
  std::function<void(CompId)> Run = [&](CompId Comp) {
    SolveComponent(Comp);
    for (CompId Succ : Cond.CompSucc[Comp])
      if (Ready[Succ].fetch_sub(1, std::memory_order_acq_rel) == 1)
        Pool.submit([&Run, Succ] { Run(Succ); });
  };
  for (CompId Comp = 0; Comp < NumComps; ++Comp)
    if (Cond.PredCount[Comp] == 0)
      Pool.submit([&Run, Comp] { Run(Comp); });
  Pool.waitIdle();

  Result.Stats.RhsEvals = RhsEvals.load();
  Result.Stats.Updates = Updates.load();
  Result.Stats.QueueMax = QueueMax.load();
  Result.Stats.Converged = !Failed.load();
  return Result;
}

} // namespace engine
} // namespace warrow

#endif // WARROW_ENGINE_STRATEGIES_SCC_PARALLEL_H
