//===- engine/strategies/worklist.h - Worklist strategy (Fig. 2) *- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic worklist strategy W of the paper's Figure 2:
///
///     W <- X;
///     while (W != {}) {
///       x <- extract(W);
///       new <- sigma[x] ⊕ f_x(sigma);
///       if (sigma[x] != new) { sigma[x] <- new; W <- W ∪ infl_x; }
///     }
///
/// W needs the declared dependency sets to compute `infl`. The worklist is
/// a *set* maintained with a LIFO extraction discipline (the discipline
/// under which the paper's Example 2 diverges with ⊟): extraction pops the
/// most recently pushed absent unknown; pushing an unknown already present
/// leaves its position unchanged. On update of x the influence set is
/// pushed with x itself last, so x is re-extracted first — the paper's
/// precaution for non-idempotent ⊕.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STRATEGIES_WORKLIST_H
#define WARROW_ENGINE_STRATEGIES_WORKLIST_H

#include "engine/dense_core.h"

#include <deque>
#include <vector>

namespace warrow {

/// Extraction discipline of the worklist (the paper leaves it open; its
/// Example 2 uses LIFO).
enum class WorklistDiscipline { Lifo, Fifo };

namespace engine {

/// Runs worklist iteration with combine operator \p Combine.
template <typename D, typename C>
SolveResult<D> runWorklist(const DenseSystem<D> &System, C &&Combine,
                           const SolverOptions &Options = {},
                           WorklistDiscipline Discipline =
                               WorklistDiscipline::Lifo) {
  DenseCore<D> Core(System, Options);

  // A deque covers both disciplines: LIFO pops the back, FIFO the front.
  std::deque<Var> Work;
  std::vector<char> InWork(System.size(), 0);
  auto Push = [&](Var Y) {
    if (InWork[Y])
      return;
    InWork[Y] = 1;
    Work.push_back(Y);
    Core.trace().enqueue(Y);
    Core.instr().noteQueueSize(Work.size());
  };
  if (Discipline == WorklistDiscipline::Lifo) {
    // All unknowns, first variable on top of the stack.
    for (Var X = System.size(); X > 0; --X)
      Push(X - 1);
  } else {
    for (Var X = 0; X < System.size(); ++X)
      Push(X);
  }

  while (!Work.empty()) {
    if (Core.outOfBudget())
      return Core.take();
    Var X;
    if (Discipline == WorklistDiscipline::Lifo) {
      X = Work.back();
      Work.pop_back();
    } else {
      X = Work.front();
      Work.pop_front();
    }
    InWork[X] = 0;
    Core.trace().dequeue(X);
    if (Core.step(X, Combine) == StepOutcome::Unchanged)
      continue;
    // Push influenced unknowns; X itself last so it is re-evaluated first.
    for (Var Y : System.influenced(X)) {
      if (Y == X)
        continue;
      Core.trace().destabilize(Y, X);
      Push(Y);
    }
    Core.trace().destabilize(X, X);
    Push(X);
  }
  return Core.take();
}

} // namespace engine
} // namespace warrow

#endif // WARROW_ENGINE_STRATEGIES_WORKLIST_H
