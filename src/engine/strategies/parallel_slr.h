//===- engine/strategies/parallel_slr.h - Work-stealing SLR+ ----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Work-stealing parallel SLR+ over the condensation of the dynamically
/// discovered dependency graph. Where the SCC-parallel dense solver
/// (scc_parallel.h) partitions a *static* system, the local solvers have
/// no a-priori unknown set — so this strategy earns its partition first:
///
///  0. a sequential *pre-pass* evaluates every reachable right-hand side
///     once against the initial assignment, interning unknowns in the
///     exact discovery order sequential SLR+ would use and recording
///     every `get` read and `side` target as a dependency edge;
///  1. Tarjan + condensation (graph/scc.h) turn the discovered graph
///     into a DAG of components with ready counts;
///  2. each component is solved by its own nested sequential `SlrEngine`
///     (the verbatim Fig. 6 / Sec. 6 iteration, per-component priority
///     queue included) running as a task on a `WorkStealingPool`: a
///     worker keeps its freshly destabilized components on its own LIFO
///     deque and steals FIFO from a victim when it drains;
///  3. cross-component traffic flows through a finely-locked per-
///     component *mailbox*: when a component stabilizes, its runner
///     publishes changed member values into a stripe-locked global map
///     and posts slot-update mail to every registered remote reader;
///     side effects whose target lives in another component are
///     deduplicated in sharded per-(target, contributor) accumulator
///     cells — the distributed `set[z]` of Sec. 6 — and forwarded as
///     contribution mail, so the receiving engine joins contributions
///     before applying ⊟ exactly as sequential SLR+ does (Example 8).
///
/// Remote reads become *proxy unknowns* of the reading component's
/// engine: ordinary unknowns whose right-hand side returns the owner's
/// last published value and whose initial value *is* that snapshot, so
/// their first solve produces no update event. Proxies are tracked by
/// plain assignment (`assignOnlyWhen`) — applying ⊕ to a mirrored value
/// could overshoot what the owner published, losing precision unsoundly.
/// When a published value changes, slot-update mail refreshes the proxy
/// and explicitly invalidates the reader-side RHS caches that read it.
///
/// Determinism contract (asserted by tests/parallel_slr_test.cpp):
///  - For systems whose reads are value-independent and side-effect-free,
///    the *update multiset* — and the final assignment — equal sequential
///    SLR+ at every thread count. Sequential SLR registers influence only
///    after a nested solve returns, so a fresh subtree is always read at
///    its final value; component-at-a-time stabilization in discovery
///    order is therefore exactly what the sequential engine already does,
///    and seeding only each component's first-discovered member (its
///    head, the minimum global slot) replays it. Pre-pass slots coincide
///    with sequential discovery slots, so traces are comparable id-by-id
///    through `IdRemapSink`.
///  - For side-effecting systems the interleaving of contribution mail is
///    schedule-dependent; the strategy then guarantees a sound partial
///    ⊕-solution on quiescence (verified by verifySideEffectingSolution
///    in the race suite), with `RhsEvals` still deterministic across
///    thread counts when discovery is static: pre-pass evaluations plus
///    per-component evaluations are schedule-independent.
///  - Reads that only materialize at post-initial values (value-dependent
///    discovery) may leave members unreached by head-only seeding; the
///    driver detects this at quiescence and seeds the stragglers, which
///    preserves soundness at the cost of the equality guarantee.
///
/// Budget: workers publish evaluation charges to a shared `BudgetGate`
/// at component-run boundaries; each nested engine's private ceiling is
/// rebound to (its own published charges) + (global remaining) before
/// every run, so the global ceiling can be overshot by at most one
/// component batch (the gate is a divergence backstop, not a limit).
///
/// Stats: per-worker `ShardedStats` shards absorb per-run deltas with
/// plain increments; the driver sums shards once at the end. QueueMax is
/// the max over per-component local priority queues (stats.h).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STRATEGIES_PARALLEL_SLR_H
#define WARROW_ENGINE_STRATEGIES_PARALLEL_SLR_H

#include "engine/instr.h"
#include "engine/strategies/slr.h"
#include "engine/strategies/two_phase_local.h"
#include "eqsys/local_system.h"
#include "graph/dependency_graph.h"
#include "graph/scc.h"
#include "lattice/combine.h"
#include "support/thread_pool.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace warrow::engine {

/// Work-stealing parallel SLR+; see file comment. \p C is the combine
/// operator, copied once per component (stateful operators keyed per
/// unknown, like DegradingWarrowCombine, stay correct: every unknown is
/// solved by exactly one component engine).
template <typename V, typename D, typename C> class ParallelSlrEngine {
public:
  using SystemT = SideEffectingSystem<V, D>;

  ParallelSlrEngine(const SystemT &System, C Combine,
                    const SolverOptions &Options = {},
                    bool LocalizedCombine = false)
      : System(System), CombineProto(std::move(Combine)), Options(Options),
        Localized(LocalizedCombine), PreInstr(PreStats, this->Options),
        Gate(this->Options.MaxRhsEvals) {}

  ParallelSlrEngine(const ParallelSlrEngine &) = delete;
  ParallelSlrEngine &operator=(const ParallelSlrEngine &) = delete;

  /// Solves for \p X0 and returns the partial ⊕-solution.
  PartialSolution<V, D> solveFor(const V &X0) {
    // A restored engine (see `restore`) resumes on the nested sequential
    // engine regardless of thread count: the destabilized region of an
    // incremental run is small by design, so there is nothing to
    // partition.
    if (Sequential)
      return Sequential->solveFor(X0);
    // A single worker gains nothing from the pre-pass, proxies, and
    // mailboxes — delegate to the sequential engine outright, so a
    // `--threads=1` run costs what sequential SLR+ costs. The public
    // contract (assignment, update multiset, keys) is the one the
    // parallel path reproduces anyway.
    unsigned HW = std::thread::hardware_concurrency();
    unsigned Threads = Options.Threads ? Options.Threads : (HW ? HW : 1);
    if (Threads == 1) {
      Sequential.reset(new SlrEngine<V, D, C, /*WithSide=*/true>(
          System, CombineProto, Options, Localized));
      return Sequential->solveFor(X0);
    }
    explore(X0);
    NPre = static_cast<uint32_t>(GVars.size());
    Graph.finalize();
    Cond = condense(Graph);
    GSigmaFixed.reserve(NPre);
    for (uint32_t G = 0; G < NPre; ++G)
      GSigmaFixed.push_back(System.initial(GVars[G]));
    ReadersFixed.resize(NPre);

    const size_t NumComps = Cond.numComponents();
    for (size_t I = 0; I < NumComps; ++I) {
      Comps.emplace_back();
      Comps.back().Head = Cond.Members[I].front();
    }
    Gate.publish(PreStats.RhsEvals);

    if (!PreFailed && NumComps != 0) {
      WorkStealingPool PoolLocal(Threads);
      ShardedStats StatsLocal(PoolLocal.shardCount());
      Pool = &PoolLocal;
      WStats = &StatsLocal;
      ReadyCount.reset(new std::atomic<uint32_t>[NumComps]);
      for (size_t I = 0; I < NumComps; ++I)
        ReadyCount[I].store(Cond.PredCount[I], std::memory_order_relaxed);
      for (CompId I = 0; I < NumComps; ++I)
        if (Cond.PredCount[I] == 0) {
          CompState &CS = Comps[I];
          std::lock_guard<std::mutex> Lock(CS.M);
          CS.Ready = true;
          CS.Queued = true;
          Pool->submit([this, I] { runComponent(I); });
        }
      // Quiesce; re-seed members head-only seeding missed (dynamic
      // discovery), until a fully quiet round.
      for (;;) {
        Pool->waitIdle();
        if (GFailed.load(std::memory_order_relaxed) || !seedUnreached())
          break;
      }
      PartialSolution<V, D> Result = assemble();
      Pool = nullptr;
      WStats = nullptr;
      return Result;
    }
    return assemble();
  }

  // --- Snapshot / restore (DESIGN §6i) ------------------------------------

  /// Externalizes the merged global solver state. Post-quiescence only.
  /// With one worker this is the sequential engine's snapshot verbatim;
  /// otherwise the per-component engine snapshots merge in global
  /// discovery-slot order:
  ///  - each unknown appears once, from its owning component — *proxy*
  ///    slots are dropped, but their influence rows and the cache reads
  ///    through them are remapped onto the owner's global slot, so
  ///    cross-component dependency edges survive as ordinary influence
  ///    edges (a proxy's snapshot value equals the owner's published
  ///    value at quiescence, so the remapped cache reads stay fresh);
  ///  - contribution cells come from the owning engines only (the
  ///    sharded accumulator cells are mirrors of the mailed-in cells);
  ///  - members never interned by any engine (pre-pass failure or budget
  ///    abort) keep the published/initial value and stay unstable, so a
  ///    restore finishes the remaining work.
  SolverState<V, D> snapshot() {
    if (Sequential)
      return Sequential->snapshot();
    SolverState<V, D> S;
    const size_t N = GVars.size() + OverflowVars.size();
    S.Vars = GVars;
    S.Vars.insert(S.Vars.end(), OverflowVars.begin(), OverflowVars.end());
    S.Sigma.reserve(N);
    for (size_t G = 0; G < N; ++G)
      S.Sigma.push_back(G < NPre ? (GSigmaFixed.empty()
                                        ? System.initial(GVars[G])
                                        : GSigmaFixed[G])
                                 : OverflowVal[G - NPre]);
    S.Infl.resize(N);
    S.Stable.assign(N, 0);
    S.WideningPoint.assign(N, 0);
    S.SideEffected.assign(N, 0);
    S.Cache.resize(N);
    for (CompId I = 0; I < Comps.size(); ++I) {
      CompState &CS = Comps[I];
      if (!CS.Engine)
        continue;
      const std::vector<V> &Order = CS.Engine->discoveryOrder();
      if (!Order.empty())
        localToGlobal(I, static_cast<uint32_t>(Order.size()) - 1);
      SolverState<V, D> ES = CS.Engine->snapshot();
      for (uint32_t L = 0; L < ES.size(); ++L) {
        uint32_t G = CS.LocalGslot[L];
        for (uint32_t R : ES.Infl[L]) {
          uint32_t GR = CS.LocalGslot[R];
          std::vector<uint32_t> &Row = S.Infl[G];
          if (std::find(Row.begin(), Row.end(), GR) == Row.end())
            Row.push_back(GR);
        }
        if (!CS.LocalIsMember[L])
          continue;
        S.Sigma[G] = ES.Sigma[L];
        S.Stable[G] = ES.Stable[L];
        S.WideningPoint[G] = ES.WideningPoint[L];
        S.SideEffected[G] = ES.SideEffected[L];
        auto &Entry = S.Cache[G];
        Entry.Valid = ES.Cache[L].Valid;
        if (Entry.Valid) {
          Entry.Value = ES.Cache[L].Value;
          Entry.Reads.reserve(ES.Cache[L].Reads.size());
          for (const auto &[RS, RV] : ES.Cache[L].Reads)
            Entry.Reads.emplace_back(CS.LocalGslot[RS], RV);
        }
      }
      for (auto &Cell : ES.Cells)
        S.Cells.push_back(std::move(Cell));
    }
    for (size_t G = 0; G < N; ++G)
      if (S.Infl[G].empty())
        S.Infl[G].push_back(static_cast<uint32_t>(G));
    // Canonical cell order by global slot (serialized snapshots diff
    // cleanly); every endpoint was discovered or adopted, so the lookup
    // always hits.
    std::unordered_map<V, uint32_t> GSlotOf;
    GSlotOf.reserve(N);
    for (uint32_t G = 0; G < S.Vars.size(); ++G)
      GSlotOf.emplace(S.Vars[G], G);
    auto SlotKey = [&GSlotOf](const V &X) {
      auto It = GSlotOf.find(X);
      return It != GSlotOf.end() ? It->second : UINT32_MAX;
    };
    std::sort(S.Cells.begin(), S.Cells.end(),
              [&](const auto &A, const auto &B) {
                uint32_t AT = SlotKey(A.Target), BT = SlotKey(B.Target);
                if (AT != BT)
                  return AT < BT;
                return SlotKey(A.Contributor) < SlotKey(B.Contributor);
              });
    return S;
  }

  /// Rebuilds from \p S for warm resumption on the nested sequential
  /// engine (see solveFor). Must be called on a fresh engine.
  void restore(const SolverState<V, D> &S) {
    assert(!Sequential && GVars.empty() && "restore requires a fresh engine");
    Sequential.reset(new SlrEngine<V, D, C, /*WithSide=*/true>(
        System, CombineProto, Options, Localized));
    Sequential->restore(S);
  }

  // --- Introspection (two-phase driver, tests) ----------------------------

  /// Every discovered unknown in global discovery order (pre-pass order,
  /// then late-adopted unknowns in adoption order).
  std::vector<V> discoveredUnknowns() const {
    if (Sequential)
      return Sequential->discoveryOrder();
    std::vector<V> All = GVars;
    All.insert(All.end(), OverflowVars.begin(), OverflowVars.end());
    return All;
  }

  /// The paper's key map over the discovered domain: key[y] = -(global
  /// discovery slot of y). Post-quiescence only.
  std::unordered_map<V, int64_t> keys() const {
    if (Sequential)
      return Sequential->keys();
    std::unordered_map<V, int64_t> K;
    K.reserve(GVars.size() + OverflowVars.size());
    for (uint32_t S = 0; S < GVars.size(); ++S)
      K.emplace(GVars[S], -static_cast<int64_t>(S));
    for (uint32_t S = 0; S < OverflowVars.size(); ++S)
      K.emplace(OverflowVars[S], -static_cast<int64_t>(NPre + S));
    return K;
  }

  /// True if \p X ever received a side-effect contribution (routed to the
  /// component engine owning X). Post-quiescence only.
  bool isSideEffected(const V &X) const {
    if (Sequential)
      return Sequential->isSideEffected(X);
    CompId Comp;
    auto It = PreSlotOf.find(X);
    if (It != PreSlotOf.end()) {
      Comp = Cond.CompOf[It->second];
    } else {
      auto OIt = OverflowSlotOf.find(X);
      if (OIt == OverflowSlotOf.end())
        return false;
      Comp = OverflowComp[OIt->second - NPre];
    }
    const CompState &CS = Comps[Comp];
    return CS.Engine && CS.Engine->isSideEffected(X);
  }

private:
  // --- Cross-component plumbing -------------------------------------------

  struct MailItem {
    enum Kind : uint8_t {
      SlotUpdate,   ///< A remote slot this component reads was republished.
      Contribution, ///< A remote equation contributed to a local target.
      SeedMember    ///< Driver fallback: solve an unreached member.
    };
    Kind K = SlotUpdate;
    V Var{};         ///< The proxy / target / member unknown.
    V Contributor{}; ///< Contribution only: the remote contributor.
    D Value{};       ///< New published value / contribution value.
    uint32_t GSlot = 0;     ///< Global slot of Var (canonical mail order).
    uint32_t FromGSlot = 0; ///< Global slot of Contributor (tie-break).
  };

  /// One partition: a nested sequential engine plus its mailbox. Lives in
  /// a deque — mutexes make it immovable.
  struct CompState {
    std::mutex M; ///< Guards Mail / Ready / Queued / CompletedOnce.
    bool Ready = false;
    bool Queued = false;
    bool CompletedOnce = false;
    bool SeededHead = false;
    std::vector<MailItem> Mail;
    uint32_t Head = 0; ///< Global slot of the first-discovered member.

    // Everything below is touched only by the (single) active runner
    // task, ordered across runs by the M lock at task start/end.
    std::unique_ptr<SystemT> View;
    std::unique_ptr<SlrEngine<V, D, C, /*WithSide=*/true>> Engine;
    std::unique_ptr<IdRemapSink> Sink;
    std::unordered_map<uint32_t, D> RemoteVal; ///< gslot -> snapshot.
    std::vector<uint32_t> LocalGslot;  ///< local slot -> global slot.
    std::vector<uint8_t> LocalIsMember;
    std::vector<D> PublishedVal; ///< members: last published; else D{}.
    uint64_t SeenEvals = 0, SeenHits = 0, SeenMisses = 0, SeenUpdates = 0;
    uint64_t PublishedCharges = 0; ///< Charges already in the BudgetGate.
  };

  /// Sharded side-effect accumulator: the distributed `set[z]` cells
  /// sigma(x, z) for cross-component contributions. Same-value repeats
  /// are dropped at the source shard, so mailboxes only carry changes.
  struct ContribShard {
    std::mutex M;
    std::unordered_map<V, std::unordered_map<V, D>> Cells;
  };

  struct SlotComp {
    uint32_t G;
    CompId Comp;
  };

  // --- Phase 0: sequential discovery pre-pass -----------------------------

  uint32_t internPre(const V &X) {
    uint32_t S = static_cast<uint32_t>(GVars.size());
    PreSlotOf.emplace(X, S);
    GVars.push_back(X);
    Graph.Succ.emplace_back();
    return S;
  }

  /// Evaluates X once against the initial assignment, interning fresh
  /// unknowns depth-first — mirroring sequential SLR+'s interning order —
  /// and recording read/contribution edges.
  void explore(const V &X) {
    uint32_t S = internPre(X);
    if (PreFailed)
      return; // Keep interning (edges stay valid), stop evaluating.
    if (PreInstr.budgetExhaustedWithCache()) {
      PreFailed = true;
      return;
    }
    PreInstr.chargeEval();
    PreInstr.trace().rhsBegin(S);
    typename SystemT::Get Get = [this, S](const V &Y) -> D {
      uint32_t YS;
      auto It = PreSlotOf.find(Y);
      if (It == PreSlotOf.end()) {
        YS = static_cast<uint32_t>(GVars.size());
        explore(Y);
      } else {
        YS = It->second;
      }
      Graph.addEdge(YS, S);
      PreInstr.trace().dependency(S, YS);
      return System.initial(Y);
    };
    typename SystemT::Side Side = [this, S](const V &Z, const D &) {
      uint32_t ZS;
      auto It = PreSlotOf.find(Z);
      if (It == PreSlotOf.end()) {
        ZS = static_cast<uint32_t>(GVars.size());
        explore(Z);
      } else {
        ZS = It->second;
      }
      Graph.addEdge(S, ZS); // Contributions flow from S into Z.
      PreInstr.trace().sideContribution(ZS, S);
    };
    System.rhs(X)(Get, Side);
    PreInstr.trace().rhsEnd(S);
  }

  // --- Global slot map + published values ---------------------------------

  /// Slot and owning component of \p X; adopts a fresh unknown into the
  /// overflow region owned by \p Adopter. Pre-pass unknowns resolve
  /// lock-free (PreSlotOf is frozen after phase 0).
  SlotComp slotAndComp(const V &X, CompId Adopter) {
    auto It = PreSlotOf.find(X);
    if (It != PreSlotOf.end())
      return {It->second, Cond.CompOf[It->second]};
    std::lock_guard<std::mutex> Lock(GlobalMutex);
    auto OIt = OverflowSlotOf.find(X);
    if (OIt != OverflowSlotOf.end())
      return {OIt->second, OverflowComp[OIt->second - NPre]};
    uint32_t G = NPre + static_cast<uint32_t>(OverflowVars.size());
    OverflowSlotOf.emplace(X, G);
    OverflowVars.push_back(X);
    OverflowComp.push_back(Adopter);
    OverflowVal.push_back(System.initial(X));
    OverflowReaders.emplace_back();
    return {G, Adopter};
  }

  /// Reads the published value of global slot \p G and registers
  /// \p Reader for future slot-update mail — atomically, so a
  /// publication cannot slip between the read and the registration.
  D readAndRegister(uint32_t G, CompId Reader) {
    if (G < NPre) {
      std::lock_guard<std::mutex> Lock(Stripes[G % kStripes]);
      ReadersFixed[G].push_back(Reader);
      return GSigmaFixed[G];
    }
    std::lock_guard<std::mutex> Lock(GlobalMutex);
    OverflowReaders[G - NPre].push_back(Reader);
    return OverflowVal[G - NPre];
  }

  /// Publishes \p Val for slot \p G; returns false when unchanged, else
  /// copies the registered readers into \p ReadersOut (mail is delivered
  /// by the caller after the lock is gone — no nested locking).
  bool publishSlot(uint32_t G, const D &Val, std::vector<CompId> &ReadersOut) {
    if (G < NPre) {
      std::lock_guard<std::mutex> Lock(Stripes[G % kStripes]);
      if (GSigmaFixed[G] == Val)
        return false;
      GSigmaFixed[G] = Val;
      ReadersOut = ReadersFixed[G];
      return true;
    }
    std::lock_guard<std::mutex> Lock(GlobalMutex);
    if (OverflowVal[G - NPre] == Val)
      return false;
    OverflowVal[G - NPre] = Val;
    ReadersOut = OverflowReaders[G - NPre];
    return true;
  }

  // --- Per-component engines ----------------------------------------------

  /// Global slot of component \p Id's local slot \p L, lazily extending
  /// the component's local-to-global tables from the nested engine's
  /// discovery order. Runner-thread only.
  uint32_t localToGlobal(CompId Id, uint32_t L) {
    CompState &CS = Comps[Id];
    while (CS.LocalGslot.size() <= L) {
      const V &X =
          CS.Engine->discoveryOrder()[CS.LocalGslot.size()];
      SlotComp SC = slotAndComp(X, Id);
      bool Member = SC.Comp == Id;
      CS.LocalGslot.push_back(SC.G);
      CS.LocalIsMember.push_back(Member ? 1 : 0);
      CS.PublishedVal.push_back(Member ? System.initial(X) : D{});
    }
    return CS.LocalGslot[L];
  }

  /// First read of remote slot \p G by component \p Id: snapshot the
  /// published value and register for updates; later reads return the
  /// mailbox-refreshed snapshot.
  D remoteSnapshot(CompId Id, uint32_t G) {
    CompState &CS = Comps[Id];
    auto It = CS.RemoteVal.find(G);
    if (It != CS.RemoteVal.end())
      return It->second;
    D Val = readAndRegister(G, Id);
    CS.RemoteVal.emplace(G, Val);
    return Val;
  }

  /// Cross-component side effect from equation \p From (slot \p FromG)
  /// onto \p Target owned by \p TargetComp: dedup through the sharded
  /// accumulator cell, then mail the changed contribution.
  void remoteContribute(uint32_t FromG, const V &From, uint32_t TargetG,
                        const V &Target, const D &Val, CompId TargetComp) {
    ContribShard &Sh = Shards[std::hash<V>{}(Target) % kShards];
    {
      std::lock_guard<std::mutex> Lock(Sh.M);
      auto &Cell = Sh.Cells[Target];
      auto It = Cell.find(From);
      if (It == Cell.end())
        It = Cell.emplace(From, D::bot()).first;
      if (Val == It->second)
        return;
      It->second = Val;
    }
    MailItem Item;
    Item.K = MailItem::Contribution;
    Item.Var = Target;
    Item.Contributor = From;
    Item.Value = Val;
    Item.GSlot = TargetG;
    Item.FromGSlot = FromG;
    deliver(TargetComp, std::move(Item));
  }

  /// Builds component \p Id's view system and nested engine. The view
  /// maps member unknowns to the real system (with side effects split
  /// into local-native and remote-mailed) and remote unknowns to proxy
  /// equations over the mailbox snapshot.
  void buildEngine(CompId Id) {
    CompState &CS = Comps[Id];
    CS.View = std::make_unique<SystemT>(
        [this, Id](const V &X) -> typename SystemT::Rhs {
          SlotComp SC = slotAndComp(X, Id);
          if (SC.Comp != Id) {
            uint32_t G = SC.G;
            return [this, Id, G](const typename SystemT::Get &,
                                 const typename SystemT::Side &) -> D {
              return Comps[Id].RemoteVal.at(G);
            };
          }
          uint32_t GX = SC.G;
          typename SystemT::Rhs Inner = System.rhs(X);
          return [this, Id, GX, X,
                  Inner](const typename SystemT::Get &Get,
                         const typename SystemT::Side &Side) -> D {
            typename SystemT::Side WrapSide =
                [this, Id, GX, &X, &Side](const V &Z, const D &Val) {
                  SlotComp ZC = slotAndComp(Z, Id);
                  if (ZC.Comp == Id) {
                    Side(Z, Val); // Native SLR+ path: cells, set[z], marks.
                    return;
                  }
                  remoteContribute(GX, X, ZC.G, Z, Val, ZC.Comp);
                };
            return Inner(Get, WrapSide);
          };
        },
        [this, Id](const V &X) -> D {
          SlotComp SC = slotAndComp(X, Id);
          if (SC.Comp == Id)
            return System.initial(X);
          // Proxy initial == snapshot: the first solve of a proxy
          // produces no update event (one eval, no growth).
          return remoteSnapshot(Id, SC.G);
        });
    SolverOptions EngineOpts = Options;
    EngineOpts.Threads = 0;
    if (Options.Trace) {
      CS.Sink = std::make_unique<IdRemapSink>(
          Options.Trace, [this, Id](uint64_t L) -> uint64_t {
            return localToGlobal(Id, static_cast<uint32_t>(L));
          });
      EngineOpts.Trace = CS.Sink.get();
    }
    CS.Engine = std::make_unique<SlrEngine<V, D, C, true>>(
        *CS.View, CombineProto, EngineOpts, Localized);
    CS.Engine->assignOnlyWhen(
        [this, Id](const V &Y) { return slotAndComp(Y, Id).Comp != Id; });
  }

  // --- Scheduling ---------------------------------------------------------

  /// Posts \p Item to component \p Target, scheduling a runner when the
  /// component is ready but idle.
  void deliver(CompId Target, MailItem Item) {
    CompState &T = Comps[Target];
    std::lock_guard<std::mutex> Lock(T.M);
    T.Mail.push_back(std::move(Item));
    if (T.Ready && !T.Queued) {
      T.Queued = true;
      Pool->submit([this, Target] { runComponent(Target); });
    }
  }

  /// Applies a mail batch in canonical (kind, slot, contributor) order so
  /// the nested engine's start state is independent of arrival order.
  void applyMail(CompId Id, std::vector<MailItem> &Mail) {
    std::stable_sort(Mail.begin(), Mail.end(),
                     [](const MailItem &A, const MailItem &B) {
                       if (A.K != B.K)
                         return A.K < B.K;
                       if (A.GSlot != B.GSlot)
                         return A.GSlot < B.GSlot;
                       return A.FromGSlot < B.FromGSlot;
                     });
    CompState &CS = Comps[Id];
    for (MailItem &Item : Mail) {
      switch (Item.K) {
      case MailItem::SlotUpdate: {
        auto It = CS.RemoteVal.find(Item.GSlot);
        if (It == CS.RemoteVal.end() || It->second == Item.Value)
          break; // Never snapshotted here, or already current.
        It->second = Item.Value;
        // Proxy RHS caches record no reads, so a remote move must both
        // destabilize the proxy and drop its cache explicitly.
        CS.Engine->invalidateCache(Item.Var);
        CS.Engine->destabilize(Item.Var);
        break;
      }
      case MailItem::Contribution:
        CS.Engine->injectContribution(Item.Var, Item.Contributor, Item.Value);
        break;
      case MailItem::SeedMember:
        CS.Engine->seed(Item.Var);
        break;
      }
    }
  }

  /// Publishes changed member values (mailing registered readers) and
  /// flushes this run's stats delta into the worker's shard.
  void publishAndFlush(CompId Id, unsigned Shard) {
    CompState &CS = Comps[Id];
    const std::vector<V> &Order = CS.Engine->discoveryOrder();
    if (!Order.empty())
      localToGlobal(Id, static_cast<uint32_t>(Order.size()) - 1);
    std::vector<std::pair<CompId, MailItem>> Outbox;
    std::vector<CompId> Readers;
    for (uint32_t L = 0; L < Order.size(); ++L) {
      if (!CS.LocalIsMember[L])
        continue;
      const D &Val = CS.Engine->valueAt(L);
      if (Val == CS.PublishedVal[L])
        continue;
      CS.PublishedVal[L] = Val;
      Readers.clear();
      if (!publishSlot(CS.LocalGslot[L], Val, Readers))
        continue;
      for (CompId R : Readers) {
        if (R == Id)
          continue;
        MailItem Item;
        Item.K = MailItem::SlotUpdate;
        Item.Var = Order[L];
        Item.Value = Val;
        Item.GSlot = CS.LocalGslot[L];
        Outbox.emplace_back(R, std::move(Item));
      }
    }
    for (auto &P : Outbox)
      deliver(P.first, std::move(P.second));

    const SolverStats &ES = CS.Engine->stats();
    SolverStats &SS = WStats->shard(Shard);
    SS.RhsEvals += ES.RhsEvals - CS.SeenEvals;
    SS.Updates += ES.Updates - CS.SeenUpdates;
    SS.RhsCacheHits += ES.RhsCacheHits - CS.SeenHits;
    SS.RhsCacheMisses += ES.RhsCacheMisses - CS.SeenMisses;
    if (ES.QueueMax > SS.QueueMax)
      SS.QueueMax = ES.QueueMax;
    uint64_t NewCharges =
        (ES.RhsEvals + ES.RhsCacheHits) - (CS.SeenEvals + CS.SeenHits);
    CS.SeenEvals = ES.RhsEvals;
    CS.SeenUpdates = ES.Updates;
    CS.SeenHits = ES.RhsCacheHits;
    CS.SeenMisses = ES.RhsCacheMisses;
    CS.PublishedCharges += NewCharges;
    Gate.publish(NewCharges);
  }

  /// The component runner task: drain mail, run the nested engine to
  /// local quiescence, publish, repeat while mail arrived meanwhile. On
  /// the first completion, release successor ready counts.
  void runComponent(CompId Id) {
    CompState &CS = Comps[Id];
    const unsigned Shard = Pool->workerIndex();
    std::vector<MailItem> Mail;
    {
      std::lock_guard<std::mutex> Lock(CS.M);
      Mail.swap(CS.Mail);
    }
    for (;;) {
      if (GFailed.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> Lock(CS.M);
        CS.Queued = false;
        return;
      }
      if (!CS.Engine)
        buildEngine(Id);
      applyMail(Id, Mail);
      Mail.clear();
      if (!CS.SeededHead) {
        // Head-only seeding: the head pulls every member in by the
        // within-component descent of `eval`, in sequential order.
        CS.SeededHead = true;
        CS.Engine->seed(GVars[CS.Head]);
      }
      CS.Engine->setBudgetCeiling(CS.PublishedCharges + Gate.remaining());
      CS.Engine->run();
      publishAndFlush(Id, Shard);
      if (CS.Engine->failed())
        GFailed.store(true, std::memory_order_relaxed);
      bool First = false;
      {
        std::lock_guard<std::mutex> Lock(CS.M);
        if (!CS.Mail.empty() && !GFailed.load(std::memory_order_relaxed)) {
          Mail.swap(CS.Mail);
          continue;
        }
        CS.Queued = false;
        First = !CS.CompletedOnce;
        CS.CompletedOnce = true;
      }
      if (First)
        releaseSuccessors(Id);
      return;
    }
  }

  void releaseSuccessors(CompId Id) {
    for (CompId Succ : Cond.CompSucc[Id])
      if (ReadyCount[Succ].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        CompState &T = Comps[Succ];
        std::lock_guard<std::mutex> Lock(T.M);
        T.Ready = true;
        if (!T.Queued) {
          T.Queued = true;
          Pool->submit([this, Succ] { runComponent(Succ); });
        }
      }
  }

  /// Post-quiescence check (driver thread): members never pulled in by
  /// their head (reads that only materialize at post-initial values) are
  /// seeded explicitly. Returns true when anything was re-scheduled.
  bool seedUnreached() {
    bool Any = false;
    for (CompId I = 0; I < Comps.size(); ++I) {
      CompState &CS = Comps[I];
      for (uint32_t M : Cond.Members[I]) {
        if (CS.Engine && CS.Engine->knows(GVars[M]))
          continue;
        Any = true;
        MailItem Item;
        Item.K = MailItem::SeedMember;
        Item.Var = GVars[M];
        Item.GSlot = M;
        deliver(I, std::move(Item));
      }
    }
    return Any;
  }

  // --- Result assembly (driver thread, post-quiescence) -------------------

  PartialSolution<V, D> assemble() {
    PartialSolution<V, D> Result;
    Result.Sigma.reserve(GVars.size() + OverflowVars.size());
    for (CompId I = 0; I < Comps.size(); ++I) {
      CompState &CS = Comps[I];
      if (CS.Engine) {
        const std::vector<V> &Order = CS.Engine->discoveryOrder();
        if (!Order.empty())
          localToGlobal(I, static_cast<uint32_t>(Order.size()) - 1);
        for (uint32_t L = 0; L < Order.size(); ++L)
          if (CS.LocalIsMember[L])
            Result.Sigma.emplace(Order[L], CS.Engine->valueAt(L));
        if (Options.RecordTrace)
          for (const auto &U : CS.Engine->updateTrace())
            Result.Trace.push_back(U);
      }
      // Members never interned by their engine keep the initial value
      // (pre-pass failure, or budget abort before the component ran).
      for (uint32_t M : Cond.Members[I])
        if (!Result.Sigma.count(GVars[M]))
          Result.Sigma.emplace(GVars[M], GSigmaFixed.empty()
                                             ? System.initial(GVars[M])
                                             : GSigmaFixed[M]);
    }
    Result.Stats = PreStats;
    if (WStats)
      WStats->sumInto(Result.Stats);
    Result.Stats.VarsSeen = GVars.size() + OverflowVars.size();
    Result.Stats.Converged =
        !PreFailed && !GFailed.load(std::memory_order_relaxed);
    if (PreInstr.tracing())
      Result.DiscoveryOrder = discoveredUnknowns();
    return Result;
  }

  static constexpr unsigned kStripes = 64;
  static constexpr unsigned kShards = 16;

  const SystemT &System;
  C CombineProto;
  SolverOptions Options;
  bool Localized;

  // Phase-0 state; PreSlotOf / GVars / Graph / Cond freeze after phase 0.
  std::unordered_map<V, uint32_t> PreSlotOf;
  std::vector<V> GVars;
  DepGraph Graph;
  Condensation Cond;
  uint32_t NPre = 0;
  bool PreFailed = false;
  SolverStats PreStats;
  Instrumentation PreInstr; // Binds PreStats; must follow it and Options.

  // Published values + reader registries. Fixed region: stripe-locked
  // flat vectors. Overflow region (late-adopted unknowns): GlobalMutex.
  std::vector<D> GSigmaFixed;
  std::vector<std::vector<CompId>> ReadersFixed;
  std::array<std::mutex, kStripes> Stripes;
  std::mutex GlobalMutex;
  std::unordered_map<V, uint32_t> OverflowSlotOf;
  std::vector<V> OverflowVars;
  std::vector<CompId> OverflowComp;
  std::vector<D> OverflowVal;
  std::vector<std::vector<CompId>> OverflowReaders;

  std::array<ContribShard, kShards> Shards;
  std::deque<CompState> Comps; // Deque: CompState is immovable.
  std::unique_ptr<std::atomic<uint32_t>[]> ReadyCount;
  std::atomic<bool> GFailed{false};
  BudgetGate Gate;
  WorkStealingPool *Pool = nullptr; // Phase 2 only.
  ShardedStats *WStats = nullptr;   // Phase 2 only.
  /// Single-worker runs bypass the parallel machinery entirely.
  std::unique_ptr<SlrEngine<V, D, C, /*WithSide=*/true>> Sequential;
};

/// Runs work-stealing parallel SLR+ on a side-effecting system, solving
/// for \p X0 with combine operator \p Combine.
template <typename V, typename D, typename C>
PartialSolution<V, D> runParallelSlrPlus(const SideEffectingSystem<V, D> &System,
                                         const V &X0, C Combine,
                                         const SolverOptions &Options = {},
                                         bool LocalizedCombine = false) {
  ParallelSlrEngine<V, D, C> Engine(System, std::move(Combine), Options,
                                    LocalizedCombine);
  return Engine.solveFor(X0);
}

/// Parallel two-phase driver: ascending parallel SLR+ with ⊕ = ▽, then
/// the shared sequential descending sweeps (two_phase_local.h) with
/// ⊕ = △ over the discovered domain, side-effected unknowns frozen.
template <typename V, typename D>
PartialSolution<V, D>
runParallelTwoPhaseSide(const SideEffectingSystem<V, D> &System, const V &X0,
                        const SolverOptions &Options = {},
                        unsigned MaxNarrowRounds = 8) {
  TraceEmitter Emit(Options.Trace);
  Emit.phaseChange(0);
  ParallelSlrEngine<V, D, WidenCombine> Ascending(System, WidenCombine{},
                                                  Options);
  PartialSolution<V, D> Result = Ascending.solveFor(X0);
  if (!Result.Stats.Converged)
    return Result;
  Instrumentation Instr(Result.Stats, Options);
  descendingSweeps(
      System, Result, Ascending.keys(),
      [&Ascending](const V &X) { return Ascending.isSideEffected(X); },
      Options, MaxNarrowRounds, Instr);
  return Result;
}

} // namespace warrow::engine

#endif // WARROW_ENGINE_STRATEGIES_PARALLEL_SLR_H
