//===- engine/strategies/local_round_robin.h - LRR strategy -----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The naive generic *local* strategy sketched in the paper's Section 5:
///
///   "one such instance can be derived from the round-robin algorithm.
///    For that, the evaluation of right-hand sides is instrumented in
///    such a way that it keeps track of the set of accessed unknowns.
///    Each round then operates on a growing set of unknowns. In the
///    first round, just x0 alone is considered. In any subsequent round
///    all unknowns are added whose values have been newly accessed
///    during the last iteration."
///
/// LRR is a *generic* local solver (right-hand sides are evaluated
/// atomically against one assignment), so with ⊕ = ⊟ it returns partial
/// post solutions on termination — but, inheriting round-robin's
/// weakness, it may diverge under ⊟ even on finite monotonic systems
/// (Example 1), unlike SLR. It serves as the baseline that motivates
/// SLR's priority discipline, and as a second independent implementation
/// for cross-checking SLR's results.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STRATEGIES_LOCAL_ROUND_ROBIN_H
#define WARROW_ENGINE_STRATEGIES_LOCAL_ROUND_ROBIN_H

#include "engine/instr.h"
#include "eqsys/local_system.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace warrow::engine {

/// Runs local round-robin iteration for the interesting unknown \p X0.
template <typename V, typename D, typename C>
PartialSolution<V, D> runLocalRoundRobin(const LocalSystem<V, D> &System,
                                         const V &X0, C &&Combine,
                                         const SolverOptions &Options = {}) {
  PartialSolution<V, D> Result;
  Instrumentation Instr(Result.Stats, Options);

  // The worklist of known unknowns, in discovery order (deterministic).
  std::vector<V> Known;
  std::unordered_set<V> KnownSet;
  // Discovery slot of each unknown = its trace event id (tracing only).
  std::unordered_map<V, uint64_t> SlotOf;
  auto Discover = [&](const V &Y) {
    if (KnownSet.insert(Y).second) {
      Known.push_back(Y);
      Result.Sigma.emplace(Y, System.initial(Y));
      if (Instr.tracing())
        SlotOf.emplace(Y, Known.size() - 1);
    }
  };
  Discover(X0);

  // The "worklist" of this strategy is the growing Known set itself; its
  // final size is the pending-set high-water mark.
  auto Finish = [&]() -> PartialSolution<V, D> {
    Result.Stats.VarsSeen = Result.Sigma.size();
    Instr.noteSweepSet(Known.size());
    if (Instr.tracing())
      Result.DiscoveryOrder = Known;
    return std::move(Result);
  };

  bool Dirty = true;
  while (Dirty) {
    Dirty = false;
    // Iterate over a snapshot: unknowns discovered this round join the
    // next round (the paper's "growing set").
    size_t RoundSize = Known.size();
    for (size_t I = 0; I < RoundSize; ++I) {
      if (Instr.budgetExhausted()) {
        Result.Stats.Converged = false;
        return Finish();
      }
      Instr.chargeEval();
      const V X = Known[I];
      typename LocalSystem<V, D>::Get Get = [&](const V &Y) -> D {
        Discover(Y);
        if (Instr.tracing())
          Instr.trace().dependency(I, SlotOf.at(Y));
        return Result.Sigma.at(Y);
      };
      Instr.trace().rhsBegin(I);
      // Evaluate the right-hand side before touching Sigma[X]: discovery
      // inserts into the map and would invalidate references.
      D RhsValue = System.rhs(X)(Get);
      Instr.trace().rhsEnd(I);
      D New = Combine(X, Result.Sigma.at(X), RhsValue);
      if (!(New == Result.Sigma.at(X))) {
        Instr.trace().update(I, Result.Sigma.at(X), RhsValue, New);
        Result.Sigma[X] = std::move(New);
        Instr.chargeUpdate();
        if (Options.RecordTrace)
          Result.Trace.push_back({X, Result.Sigma.at(X)});
        Dirty = true;
      }
    }
    if (Known.size() > RoundSize)
      Dirty = true; // Fresh unknowns need at least one evaluation.
  }
  return Finish();
}

} // namespace warrow::engine

#endif // WARROW_ENGINE_STRATEGIES_LOCAL_ROUND_ROBIN_H
