//===- engine/strategies/two_phase.h - Two-phase driver (dense) -*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical two-phase iteration of Cousot & Cousot against which the
/// paper's ⊟-solvers are compared: first an ascending (widening) phase
/// with ⊕ = ▽ until stabilization, then a descending (narrowing) phase
/// with ⊕ = △ on the obtained post solution (Fact 1). The narrowing phase
/// is only sound for *monotonic* systems — which is precisely the
/// limitation the paper removes.
///
/// The inner iteration strategy is a parameter (the engine layering at
/// work): the classical baseline runs both phases over structured
/// worklist iteration so that the comparison with the ⊟-solver isolates
/// the operator, not the strategy; the same driver over round-robin
/// (`two-phase-rr` in the registry) is a combination the pre-engine
/// layout could not express without another solver file.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STRATEGIES_TWO_PHASE_H
#define WARROW_ENGINE_STRATEGIES_TWO_PHASE_H

#include "engine/instr.h"
#include "engine/strategies/priority_worklist.h"
#include "engine/strategies/round_robin.h"
#include "eqsys/dense_system.h"
#include "lattice/combine.h"

#include <algorithm>
#include <utility>

namespace warrow::engine {

/// Runs the widening phase followed by the narrowing phase and merges the
/// statistics. \p Inner is the iteration strategy both phases run —
/// callable as `Inner(System, Combine, Options)` for ⊕ ∈ {▽, △}.
/// \p NarrowRounds bounds the descending iteration: each round is one
/// inner stabilization pass with ⊕ = △ (one round suffices for idempotent
/// narrowings; 0 disables the phase entirely).
template <typename D, typename InnerSolve>
SolveResult<D> runTwoPhase(const DenseSystem<D> &System, InnerSolve &&Inner,
                           const SolverOptions &Options = {},
                           unsigned NarrowRounds = 1) {
  TraceEmitter Emit(Options.Trace);
  // Phase 1: ascending iteration with widening.
  Emit.phaseChange(0);
  SolveResult<D> Up = Inner(System, WidenCombine{}, Options);
  if (!Up.Stats.Converged)
    return Up;

  // Phase 2: descending iteration with narrowing, seeded with the post
  // solution from phase 1.
  for (unsigned Round = 0; Round < NarrowRounds; ++Round) {
    Emit.phaseChange(1, Round);
    // Re-run the inner strategy on a copy of the system state: build a
    // wrapper system whose initial assignment is the current sigma.
    DenseSystem<D> Seeded;
    for (Var X = 0; X < System.size(); ++X)
      Seeded.addVar(System.name(X), Up.Sigma[X]);
    for (Var X = 0; X < System.size(); ++X)
      Seeded.define(
          X, [&System, X](const typename DenseSystem<D>::GetFn &Get) {
            return System.eval(X, Get);
          },
          System.deps(X));
    SolveResult<D> Down = Inner(Seeded, NarrowCombine{}, Options);
    Up.Stats.RhsEvals += Down.Stats.RhsEvals;
    Up.Stats.Updates += Down.Stats.Updates;
    Up.Stats.QueueMax = std::max(Up.Stats.QueueMax, Down.Stats.QueueMax);
    Up.Stats.Converged = Down.Stats.Converged;
    bool Changed = !(Down.Sigma == Up.Sigma);
    Up.Sigma = std::move(Down.Sigma);
    if (!Up.Stats.Converged || !Changed)
      break;
  }
  return Up;
}

/// The classical baseline: two-phase over structured worklist iteration.
template <typename D>
SolveResult<D> runTwoPhaseSW(const DenseSystem<D> &System,
                             const SolverOptions &Options = {},
                             unsigned NarrowRounds = 1) {
  return runTwoPhase(
      System,
      [](const DenseSystem<D> &S, auto &&Combine, const SolverOptions &O) {
        return runPriorityWorklist(
            S, std::forward<decltype(Combine)>(Combine), O);
      },
      Options, NarrowRounds);
}

/// Two-phase over round-robin sweeps — a new strategy×operator pairing
/// enabled by the layering (registry name `two-phase-rr`).
template <typename D>
SolveResult<D> runTwoPhaseRR(const DenseSystem<D> &System,
                             const SolverOptions &Options = {},
                             unsigned NarrowRounds = 1) {
  return runTwoPhase(
      System,
      [](const DenseSystem<D> &S, auto &&Combine, const SolverOptions &O) {
        return runRoundRobin(S, std::forward<decltype(Combine)>(Combine), O);
      },
      Options, NarrowRounds);
}

} // namespace warrow::engine

#endif // WARROW_ENGINE_STRATEGIES_TWO_PHASE_H
