//===- engine/strategies/priority_worklist.h - SW (Fig. 4) ------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured worklist strategy SW of the paper's Figure 4:
///
///     Q <- {};  for (i <- 1..n) add Q x_i;
///     while (Q != {}) {
///       x_i <- extract_min(Q);
///       new <- sigma[x_i] ⊕ f_i(sigma);
///       if (sigma[x_i] != new) {
///         sigma[x_i] <- new;
///         add Q x_i;
///         forall (x_j in infl_i) add Q x_j;
///       }
///     }
///
/// SW replaces the plain worklist by a priority queue over the fixed
/// variable ordering, always re-evaluating the *least* unstable unknown
/// first. Theorem 2: complexity matches ordinary worklist iteration up to
/// the log factor for the queue, and with ⊕ = ⊟ SW terminates for
/// monotonic systems from any initial assignment.
///
/// Fig. 4's "fixed variable ordering" is a parameter here: with the
/// default (identity) priority this is plain SW; with an explicit \p Rank
/// (smaller = evaluated first) it is ordered SW. Under a condensation-
/// consistent Rank (graph/order.h) sequential SW stabilizes every
/// component before its successors, and its result is bit-identical to
/// the SCC-parallel strategy at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STRATEGIES_PRIORITY_WORKLIST_H
#define WARROW_ENGINE_STRATEGIES_PRIORITY_WORKLIST_H

#include "engine/dense_core.h"
#include "support/indexed_heap.h"

#include <vector>

namespace warrow::engine {

/// Runs structured worklist iteration with combine operator \p Combine
/// under the priority order \p Rank (null = the identity variable order).
template <typename D, typename C>
SolveResult<D> runPriorityWorklist(const DenseSystem<D> &System, C &&Combine,
                                   const SolverOptions &Options = {},
                                   const std::vector<uint32_t> *Rank =
                                       nullptr) {
  DenseCore<D> Core(System, Options);

  // The heap holds priorities; with an explicit Rank, VarAt inverts the
  // permutation on extraction.
  std::vector<Var> VarAt;
  if (Rank) {
    VarAt.resize(System.size());
    for (Var X = 0; X < System.size(); ++X)
      VarAt[(*Rank)[X]] = X;
  }
  // Indexed min-heap; push implements the `add` of the paper (insert or
  // leave unchanged).
  IndexedHeap<> Queue;
  Queue.resizeUniverse(System.size());
  auto Add = [&](Var Y) {
    Core.trace().enqueueIf(Queue.push(Rank ? (*Rank)[Y] : Y), Y);
    Core.instr().noteQueueSize(Queue.size());
  };
  for (Var X = 0; X < System.size(); ++X)
    Add(X);

  while (!Queue.empty()) {
    if (Core.outOfBudget())
      return Core.take();
    Var X = Rank ? VarAt[Queue.pop()] : Queue.pop();
    Core.trace().dequeue(X);
    if (Core.step(X, Combine) == StepOutcome::Unchanged)
      continue;
    if (Core.instr().tracing()) {
      Core.trace().destabilize(X, X);
      for (Var Y : System.influenced(X))
        Core.trace().destabilize(Y, X);
    }
    Add(X); // Precaution for non-idempotent ⊕ (Fig. 4 line `add Q x_i`).
    for (Var Y : System.influenced(X))
      Add(Y);
  }
  return Core.take();
}

} // namespace warrow::engine

#endif // WARROW_ENGINE_STRATEGIES_PRIORITY_WORKLIST_H
