//===- engine/strategies/slr.h - SLR / SLR+ engine (Figs. 6, Sec. 6) -*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured local recursive solver SLR — the paper's Figure 6 and
/// main contribution on the algorithmic side — and its side-effecting
/// extension SLR+ (Section 6), unified into one engine parameterized by
/// the `WithSide` policy:
///
///     let rec solve x =
///       if x ∉ stable then
///         stable <- stable ∪ {x};
///         tmp <- sigma[x] ⊕ f_x (eval x);
///         if tmp != sigma[x] then
///           W <- infl[x];
///           foreach y in W do add Q y;
///           sigma[x] <- tmp; infl[x] <- {x}; stable <- stable \ W;
///           while (Q != {}) ∧ (min_key Q <= key[x]) do
///             solve (extract_min Q)
///     and init y =
///       dom <- dom ∪ {y}; key[y] <- -count; count++;
///       infl[y] <- {y}; sigma[y] <- sigma_0[y]
///     and eval x y =
///       if y ∉ dom then init y; solve y end;
///       infl[y] <- infl[y] ∪ {x};
///       sigma[y]
///     in ... init x0; solve x0; sigma
///
/// Differences from RLD that make SLR a *generic* local solver (and
/// terminating for monotonic systems under ⊟, Theorem 3):
///  - `eval` recursively solves only *fresh* unknowns, so the evaluation
///    of a right-hand side is effectively atomic;
///  - every unknown always depends on itself (`infl[y] ∋ y`);
///  - destabilized unknowns go into a global priority queue ordered by
///    discovery time (fresher unknowns = smaller key = solved first), and
///    `solve x` drains only entries with key <= key[x].
///
/// With `WithSide`, right-hand sides additionally receive a callback
/// `side(z, d)` contributing the value d to unknown z (context-sensitive
/// interprocedural analysis with flow-insensitive globals; Goblint). The
/// crucial twist (Example 8): individual contributions must not be
/// combined into the target with ⊟ one by one — narrowing on a single
/// contribution is unsound. SLR+ therefore materializes one fresh unknown
/// `(x, z)` per (contributing equation x, target z) holding the *last*
/// contribution of x to z, maintains `set[z]` = all contributors seen,
/// and extends z's right-hand side with `⊔ { sigma(x,z) | x in set[z] }`.
/// The ⊟ operator is then applied to the *joined* value, which is safe:
///
///     side x y d =
///       if (x,y) ∉ dom then sigma[(x,y)] <- ⊥;
///       if d != sigma[(x,y)] then
///         sigma[(x,y)] <- d;
///         if y in dom then set[y] ∪= {x}; stable \= {y}; add Q y
///         else init y; set[y] <- {x}; solve y
///
///     (in solve)
///     tmp <- sigma(x) ⊕ (f_x (eval x) (side x) ⊔ ⊔{sigma(z,x) | z in set x})
///
/// The side policy also carries *localized widening* as a strategy-layer
/// mixin: with `LocalizedCombine` enabled, ⊕ is applied only at
/// dynamically detected widening points — unknowns whose evaluation was
/// re-entered while already in progress (i.e. that sit on a dependency
/// cycle) and unknowns receiving side effects; all other unknowns are
/// combined with plain join-free assignment. Every cycle passes through a
/// widening point, so termination for monotonic systems is preserved,
/// while acyclic unknowns never lose precision to widening (the
/// localized-widening refinement of the follow-up journal work on SLR).
///
/// Representation: unknowns are interned into dense *slots* in discovery
/// order, so `key[y] = -slot(y)` and every piece of bookkeeping — sigma,
/// stable, infl, the on-stack and widening-point marks, the priority
/// queue, and the evaluation cache — is a flat vector indexed by slot
/// instead of a node-based map keyed by V. The single hash lookup left on
/// the hot path is the `y ∈ dom` test in `eval`. The queue is an indexed
/// binary heap over slots; since keys are negated slots, the minimum key
/// is the *maximum* slot, hence the `std::greater` instance. `infl`
/// vectors may transiently hold duplicate entries (the set-insert of
/// Fig. 6 is approximated by an append with a cheap back-check);
/// duplicates are harmless because destabilization and re-queueing are
/// both idempotent, and every update of y resets `infl[y]`. The
/// per-contributor cells sigma(x,z) stay in a V-keyed map (contribution
/// traffic is orders of magnitude below get traffic, and tests read the
/// map through `contributions()`). `set[z]` itself is implicit: the join
/// in solve() runs over *all* of z's cells — cells that never changed
/// still hold ⊥ and join as no-ops, so the result is identical — and a
/// per-slot flag tracks `set[z] != {}`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STRATEGIES_SLR_H
#define WARROW_ENGINE_STRATEGIES_SLR_H

#include "engine/instr.h"
#include "engine/solver_state.h"
#include "eqsys/local_system.h"
#include "support/indexed_heap.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace warrow::engine {

/// The SLR family engine. \p WithSide selects the side-effecting SLR+
/// policy (contribution cells, `set[z]`, localized widening); without it
/// the engine is exactly Fig. 6's SLR over plain local systems. Kept as
/// a class so that tests and the experiment drivers can inspect the
/// discovered domain, keys, contributions, and widening points.
template <typename V, typename D, typename C, bool WithSide> class SlrEngine {
public:
  using SystemT =
      std::conditional_t<WithSide, SideEffectingSystem<V, D>,
                         LocalSystem<V, D>>;

  SlrEngine(const SystemT &System, C Combine, const SolverOptions &Options = {},
            bool LocalizedCombine = false)
      : System(System), Combine(std::move(Combine)), Options(Options),
        Instr(Stats, this->Options), Localized(LocalizedCombine) {}

  /// Solves for \p X0 and returns the partial ⊕-solution. On a fresh
  /// engine X0 is interned into slot 0; on a restored engine (see
  /// `restore`) an already-known root resumes from its snapshot slot.
  PartialSolution<V, D> solveFor(const V &X0) {
    auto RootIt = SlotOf.find(X0);
    solve(RootIt != SlotOf.end() ? RootIt->second : internFresh(X0));
    // Complete any work left in the queue (possible when destabilizations
    // race with evaluations that end up not changing any value up the
    // recursion; the final assignment must be a partial ⊕-solution).
    while (!Failed && !Queue.empty())
      solve(popQ());
    PartialSolution<V, D> Result;
    Result.Sigma.reserve(VarOf.size());
    for (uint32_t S = 0; S < VarOf.size(); ++S)
      Result.Sigma.emplace(VarOf[S], SigmaV[S]);
    Result.Stats = Stats;
    Result.Stats.Converged = !Failed;
    Result.Stats.VarsSeen = VarOf.size();
    if constexpr (WithSide)
      Result.Trace = std::move(Trace);
    if (Instr.tracing())
      Result.DiscoveryOrder = VarOf;
    return Result;
  }

  // --- Nested-engine interface --------------------------------------------
  // The parallel local strategy drives one SlrEngine per dependency-graph
  // component through the methods below: `seed` + `run` replace solveFor's
  // closed loop, and the destabilize/invalidate/inject entry points feed
  // cross-component traffic (published remote values, side-effect
  // contributions) into the engine between runs. Sequential callers never
  // touch these; solveFor is unchanged.

  /// Interns \p X0 if fresh and queues it (a later `run` solves it); an
  /// already-known unstable unknown is re-queued, a stable one ignored.
  void seed(const V &X0) {
    auto It = SlotOf.find(X0);
    if (It == SlotOf.end()) {
      addQ(internFresh(X0));
      return;
    }
    if (!StableV[It->second])
      addQ(It->second);
  }

  /// Drains the queue to quiescence — the tail loop of solveFor, exposed
  /// so a driver can interleave runs with external destabilization.
  void run() {
    while (!Failed && !Queue.empty())
      solve(popQ());
  }

  /// Rebinds the evaluation ceiling before a `run`. The parallel driver
  /// sets it to (charges this engine already published) + (global budget
  /// remaining), so the engine stops as soon as its own unpublished work
  /// would exceed what is left of the shared budget.
  void setBudgetCeiling(uint64_t Max) { Instr.setMaxRhsEvals(Max); }

  /// Externally destabilizes \p Y (no-op for unknown Y): removes it from
  /// `stable` and queues it for the next `run`.
  void destabilize(const V &Y) {
    auto It = SlotOf.find(Y);
    if (It == SlotOf.end())
      return;
    Instr.trace().destabilize(It->second, It->second);
    StableV[It->second] = 0;
    addQ(It->second);
  }

  /// Drops \p Y's read cache so the next solve re-evaluates its
  /// right-hand side even though no *recorded* read changed (the
  /// parallel driver uses this when an input outside the engine's view —
  /// a published remote value — moved).
  void invalidateCache(const V &Y) {
    auto It = SlotOf.find(Y);
    if (It != SlotOf.end())
      CacheV[It->second].Valid = false;
  }

  /// True when \p X has been interned (is in `dom`).
  bool knows(const V &X) const { return SlotOf.count(X) != 0; }

  /// Value of the unknown in discovery slot \p Slot.
  const D &valueAt(uint32_t Slot) const { return SigmaV[Slot]; }

  /// Side-effect contribution from an unknown *outside* this engine
  /// (side policy only): records \p Value in the per-contributor cell
  /// sigma(Contributor, Target) exactly as `side` would, destabilizing
  /// and queueing \p Target on change. A fresh target is interned and
  /// queued (not solved immediately — the driver's next `run` drains it).
  void injectContribution(const V &Target, const V &Contributor,
                          const D &Value) {
    static_assert(WithSide, "contributions require the side policy");
    auto &TargetContribs = Contribs[Target];
    auto It = TargetContribs.find(Contributor);
    if (It == TargetContribs.end())
      It = TargetContribs.emplace(Contributor, D::bot()).first;
    if (Value == It->second)
      return;
    It->second = Value;
    auto SlotIt = SlotOf.find(Target);
    uint32_t TS = SlotIt != SlotOf.end() ? SlotIt->second : internFresh(Target);
    auto FromIt = SlotOf.find(Contributor);
    if (FromIt != SlotOf.end())
      Instr.trace().sideContribution(TS, FromIt->second);
    Instr.trace().destabilize(TS, TS);
    SideEffectedV[TS] = 1; // set[target] ∪= {contributor}
    StableV[TS] = 0;
    addQ(TS);
  }

  /// Installs a predicate marking unknowns that must be tracked by plain
  /// assignment instead of ⊕ (side policy only; evaluated once, at
  /// interning). The parallel driver marks remote *proxy* unknowns this
  /// way: a proxy mirrors another component's published value verbatim,
  /// and applying a widening operator on top would overshoot it. Must be
  /// installed before the first unknown is interned.
  void assignOnlyWhen(std::function<bool(const V &)> Pred) {
    assert(VarOf.empty() && "assign-only policy must precede interning");
    AssignOnlyPred = std::move(Pred);
  }

  /// Update trace recorded so far (side policy, RecordTrace only) — the
  /// parallel driver merges per-engine traces; solveFor moves this.
  const std::vector<std::pair<V, D>> &updateTrace() const { return Trace; }

  // --- Snapshot / restore (DESIGN §6i) ------------------------------------

  /// Externalizes the complete solver state: σ, infl, stable, the
  /// localized widening-point and set[z] marks, the read cache (the
  /// dependency records), and the per-contributor cells. Meaningful at
  /// quiescence (after solveFor / a drained run); the on-stack marks are
  /// empty there and are not captured.
  SolverState<V, D> snapshot() const {
    SolverState<V, D> S;
    const size_t N = VarOf.size();
    S.Vars = VarOf;
    S.Sigma = SigmaV;
    S.Infl = InflV;
    S.Stable = StableV;
    if constexpr (WithSide) {
      S.WideningPoint = WideningPointV;
      S.SideEffected = SideEffectedV;
    } else {
      S.WideningPoint.assign(N, 0);
      S.SideEffected.assign(N, 0);
    }
    S.Cache.resize(N);
    for (size_t I = 0; I < N; ++I) {
      S.Cache[I].Reads = CacheV[I].Reads;
      S.Cache[I].Value = CacheV[I].Value;
      S.Cache[I].Valid = CacheV[I].Valid;
    }
    for (const auto &[Target, Cells] : Contribs)
      for (const auto &[Contributor, Value] : Cells)
        S.Cells.push_back({Target, Contributor, Value});
    // Deterministic cell order where slots exist (keeps serialized
    // snapshots diffable run to run); cells whose endpoint was never
    // interned sort last.
    auto SlotKey = [this](const V &X) {
      auto It = SlotOf.find(X);
      return It != SlotOf.end() ? It->second : UINT32_MAX;
    };
    std::sort(S.Cells.begin(), S.Cells.end(),
              [&](const auto &A, const auto &B) {
                uint32_t AT = SlotKey(A.Target), BT = SlotKey(B.Target);
                if (AT != BT)
                  return AT < BT;
                return SlotKey(A.Contributor) < SlotKey(B.Contributor);
              });
    return S;
  }

  /// Rebuilds the engine from \p S. Must be called on a fresh engine
  /// (nothing interned yet); unstable slots are queued so the next
  /// solveFor/run resumes exactly where the snapshot's destabilization
  /// left off. Cells whose target is absent from the slot table mark the
  /// target for `SideEffected` adoption when it is re-interned — without
  /// that mark, `side`'s value-dedup would never re-announce an unchanged
  /// contribution and the localized-widening policy would miss set[z].
  void restore(const SolverState<V, D> &S) {
    assert(VarOf.empty() && "restore requires a fresh engine");
    const size_t N = S.size();
    VarOf = S.Vars;
    SigmaV = S.Sigma;
    InflV = S.Infl;
    StableV = S.Stable;
    SlotOf.reserve(N);
    for (uint32_t I = 0; I < N; ++I)
      SlotOf.emplace(VarOf[I], I);
    if constexpr (WithSide) {
      OnStackV.assign(N, 0); // The called set is empty at quiescence.
      WideningPointV = S.WideningPoint;
      SideEffectedV = S.SideEffected;
      AssignOnlyV.resize(N);
      for (uint32_t I = 0; I < N; ++I)
        AssignOnlyV[I] = AssignOnlyPred && AssignOnlyPred(VarOf[I]) ? 1 : 0;
      for (uint32_t I = 0; I < N; ++I)
        if (WideningPointV[I])
          WideningPoints.insert(VarOf[I]);
    }
    CacheV.resize(N);
    for (size_t I = 0; I < N; ++I) {
      CacheV[I].Reads = S.Cache[I].Reads;
      CacheV[I].Value = S.Cache[I].Value;
      CacheV[I].Valid = S.Cache[I].Valid && Options.RhsCache;
    }
    Queue.resizeUniverse(N);
    for (uint32_t I = 0; I < N; ++I)
      if (!StableV[I])
        addQ(I);
    if constexpr (WithSide) {
      for (const auto &Cell : S.Cells) {
        Contribs[Cell.Target][Cell.Contributor] = Cell.Value;
        auto It = SlotOf.find(Cell.Target);
        if (It == SlotOf.end())
          PendingSideMark.insert(Cell.Target);
        else
          SideEffectedV[It->second] = 1;
      }
    }
  }

  // --- Introspection (used by the two-phase baseline and by tests) --------

  /// Discovered unknowns in discovery order (slot order); `keys` of the
  /// paper are the negated positions in this sequence.
  const std::vector<V> &discoveryOrder() const { return VarOf; }

  /// Materializes the paper's key map: key[y] = -(discovery index of y).
  std::unordered_map<V, int64_t> keys() const {
    std::unordered_map<V, int64_t> K;
    K.reserve(VarOf.size());
    for (uint32_t S = 0; S < VarOf.size(); ++S)
      K.emplace(VarOf[S], -static_cast<int64_t>(S));
    return K;
  }

  /// Materializes the current assignment (diagnostics/tests only).
  std::unordered_map<V, D> assignment() const {
    std::unordered_map<V, D> A;
    A.reserve(VarOf.size());
    for (uint32_t S = 0; S < VarOf.size(); ++S)
      A.emplace(VarOf[S], SigmaV[S]);
    return A;
  }

  /// Contributions per target: target -> (contributor -> last value).
  const std::unordered_map<V, std::unordered_map<V, D>> &
  contributions() const {
    return Contribs;
  }

  /// True if \p X ever received a side-effect contribution.
  bool isSideEffected(const V &X) const {
    auto It = SlotOf.find(X);
    return It != SlotOf.end() && SideEffectedV[It->second];
  }

  /// Widening points detected so far (meaningful in localized mode).
  const std::unordered_set<V> &wideningPoints() const {
    return WideningPoints;
  }

  const SolverStats &stats() const { return Stats; }
  bool failed() const { return Failed; }

private:
  /// Last evaluation of one unknown: the (slot, value) pairs read through
  /// `Get`, in read order with duplicates, and the RHS result (before the
  /// contribution join and ⊕, in side mode). Copies of consed values are
  /// ref-count bumps, so keeping them is cheap.
  struct CacheEntry {
    std::vector<std::pair<uint32_t, D>> Reads;
    D Value{};
    bool Valid = false;
  };

  /// Interns \p Y, which must be fresh, into the next slot (`init` of
  /// Fig. 6: key <- -count, infl <- {y}, sigma <- sigma_0).
  uint32_t internFresh(const V &Y) {
    assert(!SlotOf.count(Y) && "double init");
    uint32_t S = static_cast<uint32_t>(VarOf.size());
    SlotOf.emplace(Y, S);
    VarOf.push_back(Y);
    SigmaV.push_back(System.initial(Y));
    InflV.push_back({S});
    StableV.push_back(0);
    if constexpr (WithSide) {
      OnStackV.push_back(0);
      WideningPointV.push_back(0);
      // A restored cell may target an unknown outside the snapshot's
      // slot table; re-adopting it here keeps set[z] sound (the
      // contributor's value-dedup in `side` will never re-announce it).
      SideEffectedV.push_back(
          !PendingSideMark.empty() && PendingSideMark.erase(Y) != 0 ? 1 : 0);
      AssignOnlyV.push_back(AssignOnlyPred && AssignOnlyPred(Y) ? 1 : 0);
    }
    CacheV.emplace_back();
    Queue.resizeUniverse(VarOf.size());
    return S;
  }

  void addQ(uint32_t S) {
    Instr.trace().enqueueIf(Queue.push(S), S);
    Instr.noteQueueSize(Queue.size());
  }

  uint32_t popQ() {
    uint32_t S = Queue.pop();
    Instr.trace().dequeue(S);
    return S;
  }

  void solve(uint32_t XS) {
    if (Failed || StableV[XS])
      return;
    StableV[XS] = 1;
    // Cache hits count against the budget too (see Instrumentation).
    if (Instr.budgetExhaustedWithCache()) {
      Failed = true;
      return;
    }
    if constexpr (WithSide)
      OnStackV[XS] = 1;
    D New = evaluate(XS);
    if (Failed) {
      if constexpr (WithSide)
        OnStackV[XS] = 0;
      return;
    }
    bool UseCombine = true;
    if constexpr (WithSide) {
      // Join in the recorded contributions of all contributors (cells
      // that never changed still hold ⊥ and drop out of the join).
      auto ContribIt = Contribs.find(VarOf[XS]);
      if (ContribIt != Contribs.end())
        for (const auto &[Z, Value] : ContribIt->second)
          New = New.join(Value);
      // In localized mode, ⊕ is applied at widening points only;
      // elsewhere the unknown simply tracks its right-hand side (plain
      // assignment) — acyclic unknowns stabilize once their inputs do,
      // values may both grow and shrink, and no widening-induced
      // precision is lost.
      UseCombine = (!Localized || WideningPointV[XS] || SideEffectedV[XS]) &&
                   !AssignOnlyV[XS];
    }
    D Tmp = UseCombine ? Combine(VarOf[XS], SigmaV[XS], New) : New;
    if (!(Tmp == SigmaV[XS])) {
      Instr.trace().update(XS, SigmaV[XS], New, Tmp);
      std::vector<uint32_t> W = std::move(InflV[XS]);
      if (Instr.tracing())
        for (uint32_t YS : W)
          Instr.trace().destabilize(YS, XS);
      for (uint32_t YS : W)
        addQ(YS);
      SigmaV[XS] = std::move(Tmp);
      Instr.chargeUpdate();
      if constexpr (WithSide)
        if (Options.RecordTrace)
          Trace.push_back({VarOf[XS], SigmaV[XS]});
      InflV[XS] = {XS};
      for (uint32_t YS : W)
        StableV[YS] = 0;
      // min_key Q <= key[x]  ⟺  max slot in Q >= slot(x).
      while (!Failed && !Queue.empty() && Queue.top() >= XS)
        solve(popQ());
    }
    if constexpr (WithSide)
      OnStackV[XS] = 0;
  }

  /// f_x (eval x) [(side x)], answered from the read cache when every
  /// value the last evaluation of x read through `Get` is unchanged.
  /// Right-hand sides are pure in the instrumented-Get sense (DESIGN §3):
  /// same reads, same result — so a hit returns the identical value the
  /// evaluation would have produced and the solver's behavior is
  /// bit-for-bit unchanged. Sound despite side effects: contribution
  /// values are a pure function of the reads, and only x's own
  /// evaluations write x's contribution cells, so with identical reads
  /// every `side` call the skipped evaluation would make finds its value
  /// already recorded and early-returns (no destabilization). The
  /// contribution join over set[x] stays in solve() — other contributors
  /// can change without x's reads changing.
  D evaluate(uint32_t XS) {
    if (Options.RhsCache && CacheV[XS].Valid && cacheIsFresh(XS)) {
      Instr.chargeCacheHit();
      Instr.trace().rhsBegin(XS);
      // Replay what a real re-evaluation would do per read, in order:
      // re-register influence (updates of y reset infl[y], so earlier
      // registrations may be gone) and — in localized side mode — re-run
      // the widening-point detection (X is on the stack, exactly as
      // during a real evaluation, so self-reads behave identically).
      for (const auto &R : CacheV[XS].Reads) {
        if constexpr (WithSide)
          if (Localized && OnStackV[R.first])
            markWideningPoint(R.first);
        std::vector<uint32_t> &I = InflV[R.first];
        if (I.empty() || I.back() != XS)
          I.push_back(XS);
        Instr.trace().dependency(XS, R.first);
      }
      Instr.trace().rhsEnd(XS, /*FromCache=*/true);
      return CacheV[XS].Value;
    }
    if (Options.RhsCache)
      Instr.chargeCacheMiss();
    Instr.chargeEval();
    Instr.trace().rhsBegin(XS);
    // Reads lives in this frame: CacheV may reallocate while the RHS
    // recursively interns fresh unknowns, so no reference into it may be
    // held across the rhs() call (same reason everything below indexes).
    std::vector<std::pair<uint32_t, D>> Reads;
    typename SystemT::Get Eval = [this, XS, &Reads](const V &Y) -> D {
      uint32_t YS = eval(XS, Y);
      if (Options.RhsCache)
        Reads.emplace_back(YS, SigmaV[YS]);
      return SigmaV[YS];
    };
    D New = [&] {
      if constexpr (WithSide) {
        typename SystemT::Side Side =
            [this, XS](const V &Y, const D &Value) { side(XS, Y, Value); };
        return System.rhs(VarOf[XS])(Eval, Side);
      } else {
        return System.rhs(VarOf[XS])(Eval);
      }
    }();
    Instr.trace().rhsEnd(XS);
    if (!Failed && Options.RhsCache)
      CacheV[XS] = CacheEntry{std::move(Reads), New, true};
    return New;
  }

  /// True when every recorded read of x's last evaluation would return
  /// the identical value today. With hash-consed environments each check
  /// is (almost always) a pointer or memoized-hash compare.
  bool cacheIsFresh(uint32_t XS) const {
    for (const auto &R : CacheV[XS].Reads)
      if (!(R.second == SigmaV[R.first]))
        return false;
    return true;
  }

  void markWideningPoint(uint32_t YS) {
    if (!WideningPointV[YS]) {
      WideningPointV[YS] = 1;
      WideningPoints.insert(VarOf[YS]);
      Instr.trace().wideningPoint(YS);
    }
  }

  /// `eval x y` of Fig. 6 minus the value read; returns y's slot.
  uint32_t eval(uint32_t XS, const V &Y) {
    uint32_t YS;
    auto It = SlotOf.find(Y);
    if (It == SlotOf.end()) {
      YS = internFresh(Y);
      solve(YS);
    } else {
      YS = It->second;
      if constexpr (WithSide)
        if (Localized && OnStackV[YS]) {
          // Y queried while its own evaluation is in progress: Y closes a
          // dependency cycle and becomes a widening point.
          markWideningPoint(YS);
        }
    }
    // infl[y] ∪= {x}: append with a cheap duplicate filter; exact set
    // semantics are not required (see file comment).
    std::vector<uint32_t> &I = InflV[YS];
    if (I.empty() || I.back() != XS)
      I.push_back(XS);
    Instr.trace().dependency(XS, YS);
    return YS;
  }

  void side(uint32_t XS, const V &Y, const D &Value) {
    auto &TargetContribs = Contribs[Y];
    auto It = TargetContribs.find(VarOf[XS]);
    if (It == TargetContribs.end())
      It = TargetContribs.emplace(VarOf[XS], D::bot()).first; // <- ⊥
    if (Value == It->second)
      return;
    It->second = Value;
    auto SlotIt = SlotOf.find(Y);
    if (SlotIt != SlotOf.end()) {
      Instr.trace().sideContribution(SlotIt->second, XS);
      Instr.trace().destabilize(SlotIt->second, XS);
      SideEffectedV[SlotIt->second] = 1; // set[y] ∪= {x}
      StableV[SlotIt->second] = 0;
      addQ(SlotIt->second);
      return;
    }
    uint32_t YS = internFresh(Y);
    Instr.trace().sideContribution(YS, XS);
    SideEffectedV[YS] = 1; // set[y] <- {x}
    solve(YS);
  }

  const SystemT &System;
  C Combine;
  SolverOptions Options;

  // Dense slot-indexed state; slots are discovery order (`count`).
  std::unordered_map<V, uint32_t> SlotOf; // dom = keys(SlotOf).
  std::vector<V> VarOf;
  std::vector<D> SigmaV;
  std::vector<std::vector<uint32_t>> InflV;
  std::vector<uint8_t> StableV;
  std::vector<uint8_t> OnStackV;       // Side policy only.
  std::vector<uint8_t> WideningPointV; // Side policy only.
  std::vector<uint8_t> SideEffectedV;  // Side policy only.
  std::vector<uint8_t> AssignOnlyV;    // Side policy only.
  std::function<bool(const V &)> AssignOnlyPred; // Null for sequential use.
  std::vector<CacheEntry> CacheV;
  IndexedHeap<std::greater<uint32_t>> Queue; // top() = max slot = min key.

  // Contribution cells sigma(x,z), target-major; V-keyed on purpose (see
  // file comment). WideningPoints mirrors WideningPointV for the public
  // accessor (writes are rare — once per detected point). Side policy
  // only; empty otherwise.
  std::unordered_map<V, std::unordered_map<V, D>> Contribs;
  std::unordered_set<V> WideningPoints;
  std::unordered_set<V> PendingSideMark; // Restored cells awaiting re-intern.
  std::vector<std::pair<V, D>> Trace;
  SolverStats Stats;
  Instrumentation Instr; // Binds Stats; must follow Stats and Options.
  bool Failed = false;
  bool Localized = false;
};

} // namespace warrow::engine

#endif // WARROW_ENGINE_STRATEGIES_SLR_H
