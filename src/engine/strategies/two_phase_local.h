//===- engine/strategies/two_phase_local.h - Two-phase (local) --*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical two-phase widening/narrowing baseline for *side-effecting*
/// local systems — the comparison point of the paper's Figure 7.
///
/// Phase 1 runs SLR+ with ⊕ = ▽ to obtain a post solution on the
/// discovered domain. Phase 2 performs descending (narrowing) sweeps over
/// that fixed domain with ⊕ = △, re-evaluating each right-hand side
/// against the current assignment.
///
/// Faithful to the pre-paper state of the art, side-effected unknowns
/// (globals) are *frozen* during phase 2: without SLR+'s per-contributor
/// value tracking, narrowing a global from any individual contribution is
/// unsound (paper, Example 8), so a classical solver must keep the widened
/// value. Side effects emitted during phase-2 re-evaluations are therefore
/// discarded. This is the precision gap the ⊟-solver closes.
///
/// Soundness requires monotonic right-hand sides and a fixed unknown set —
/// exactly the conditions of Fact 1; the context-sensitive analyses of
/// Table 1 violate them, which is why only ▽ and ⊟ are compared there.
///
/// The ascending phase's combine localization is a parameter (the engine
/// layering at work): with \p LocalizedAscending, phase 1 widens only at
/// detected widening points (cycle heads and side-effected unknowns) and
/// plainly tracks every other unknown — still a post solution, since
/// non-widening points satisfy sigma[x] = f_x(sigma) on stabilization —
/// before the same descending sweeps run. This `two-phase-localized`
/// combination could not be expressed pre-engine: the old baseline
/// hard-wired a non-localized ascending SLR+.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STRATEGIES_TWO_PHASE_LOCAL_H
#define WARROW_ENGINE_STRATEGIES_TWO_PHASE_LOCAL_H

#include "engine/instr.h"
#include "engine/strategies/slr.h"
#include "eqsys/local_system.h"
#include "lattice/combine.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace warrow::engine {

/// The descending half of a two-phase solve: narrowing sweeps over the
/// fixed domain of an ascending result, shared by the sequential and the
/// parallel two-phase drivers. \p Keys is the ascending phase's key map
/// (key[x] = -slot); \p IsFrozen marks unknowns that must keep their
/// widened value (side-effected globals — narrowing an individual
/// contribution is unsound, Example 8). Side effects emitted during the
/// sweeps are discarded. Mutates \p Result in place; clears `Converged`
/// when the evaluation budget runs out mid-sweep.
template <typename V, typename D, typename FrozenPred>
void descendingSweeps(const SideEffectingSystem<V, D> &System,
                      PartialSolution<V, D> &Result,
                      const std::unordered_map<V, int64_t> &Keys,
                      FrozenPred IsFrozen, const SolverOptions &Options,
                      unsigned MaxNarrowRounds, Instrumentation &Instr) {
  // Descending events reuse the ascending slot ids (key[x] = -slot).
  std::unordered_map<V, uint64_t> SlotOf;
  if (Instr.tracing())
    for (const auto &[X, KeyValue] : Keys)
      SlotOf.emplace(X, static_cast<uint64_t>(-KeyValue));

  // Stable iteration order: by discovery key, oldest (x0) last, so inner
  // (fresher) unknowns narrow first — mirroring SLR's priority discipline.
  std::vector<std::pair<int64_t, V>> Order;
  Order.reserve(Result.Sigma.size());
  for (const auto &[X, KeyValue] : Keys)
    Order.push_back({KeyValue, X});
  std::sort(Order.begin(), Order.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  auto GetCurrent = [&System, &Result](const V &Y) -> D {
    auto It = Result.Sigma.find(Y);
    return It == Result.Sigma.end() ? System.initial(Y) : It->second;
  };
  typename SideEffectingSystem<V, D>::Side DiscardSide =
      [](const V &, const D &) {};

  // Per-unknown read cache for the sweeps: a descending round mostly
  // re-confirms values, so most right-hand sides see the exact inputs of
  // the previous round and need not run (side effects are discarded in
  // phase 2, so skipping is trivially sound here).
  struct CacheEntry {
    std::vector<std::pair<V, D>> Reads;
    D Value{};
  };
  std::unordered_map<V, CacheEntry> Cache;

  // Descending sweeps with narrowing; frozen globals.
  for (unsigned Round = 0; Round < MaxNarrowRounds; ++Round) {
    Instr.trace().phaseChange(1, Round);
    bool Changed = false;
    for (const auto &[KeyValue, X] : Order) {
      if (IsFrozen(X))
        continue; // Frozen: classical solvers cannot narrow globals.
      if (Instr.budgetExhaustedWithCache()) {
        Result.Stats.Converged = false;
        return;
      }
      const uint64_t XSlot = Instr.tracing() ? SlotOf.at(X) : 0;
      auto DepEvent = [&](const V &Y) {
        auto It = SlotOf.find(Y);
        if (It != SlotOf.end())
          Instr.trace().dependency(XSlot, It->second);
      };
      D New;
      auto CIt = Options.RhsCache ? Cache.find(X) : Cache.end();
      bool Hit = CIt != Cache.end() &&
                 std::all_of(CIt->second.Reads.begin(),
                             CIt->second.Reads.end(), [&](const auto &R) {
                               return R.second == GetCurrent(R.first);
                             });
      if (Hit) {
        Instr.chargeCacheHit();
        if (Instr.tracing()) {
          Instr.trace().rhsBegin(XSlot);
          for (const auto &R : CIt->second.Reads)
            DepEvent(R.first);
          Instr.trace().rhsEnd(XSlot, /*FromCache=*/true);
        }
        New = CIt->second.Value;
      } else {
        if (Options.RhsCache)
          Instr.chargeCacheMiss();
        Instr.chargeEval();
        Instr.trace().rhsBegin(XSlot);
        std::vector<std::pair<V, D>> Reads;
        typename SideEffectingSystem<V, D>::Get Get =
            [&](const V &Y) -> D {
          D Val = GetCurrent(Y);
          if (Options.RhsCache)
            Reads.emplace_back(Y, Val);
          if (Instr.tracing())
            DepEvent(Y);
          return Val;
        };
        New = System.rhs(X)(Get, DiscardSide);
        Instr.trace().rhsEnd(XSlot);
        if (Options.RhsCache)
          Cache[X] = CacheEntry{std::move(Reads), New};
      }
      D Narrowed = Result.Sigma.at(X).narrow(New);
      if (!(Narrowed == Result.Sigma.at(X))) {
        Instr.trace().update(XSlot, Result.Sigma.at(X), New, Narrowed);
        Result.Sigma[X] = std::move(Narrowed);
        Instr.chargeUpdate();
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
}

/// Runs the two-phase baseline on a side-effecting system, solving for
/// \p X0. \p MaxNarrowRounds bounds the number of full descending sweeps;
/// \p LocalizedAscending selects localized widening in phase 1.
template <typename V, typename D>
PartialSolution<V, D>
runTwoPhaseSide(const SideEffectingSystem<V, D> &System, const V &X0,
                const SolverOptions &Options = {},
                unsigned MaxNarrowRounds = 8,
                bool LocalizedAscending = false) {
  TraceEmitter Emit(Options.Trace);
  // Phase 1: ascending with widening.
  Emit.phaseChange(0);
  SlrEngine<V, D, WidenCombine, /*WithSide=*/true> Ascending(
      System, WidenCombine{}, Options, LocalizedAscending);
  PartialSolution<V, D> Result = Ascending.solveFor(X0);
  if (!Result.Stats.Converged)
    return Result;
  Instrumentation Instr(Result.Stats, Options);
  // Phase 2: descending sweeps on the discovered domain.
  descendingSweeps(
      System, Result, Ascending.keys(),
      [&Ascending](const V &X) { return Ascending.isSideEffected(X); },
      Options, MaxNarrowRounds, Instr);
  return Result;
}

/// Two-phase baseline for plain (non-side-effecting) local systems,
/// implemented by wrapping them as side-effecting systems with no effects.
template <typename V, typename D>
PartialSolution<V, D> runTwoPhaseLocal(const LocalSystem<V, D> &System,
                                       const V &X0,
                                       const SolverOptions &Options = {},
                                       unsigned MaxNarrowRounds = 8,
                                       bool LocalizedAscending = false) {
  SideEffectingSystem<V, D> Wrapped(
      [&System](const V &X) -> typename SideEffectingSystem<V, D>::Rhs {
        typename LocalSystem<V, D>::Rhs F = System.rhs(X);
        return [F](const typename SideEffectingSystem<V, D>::Get &Get,
                   const typename SideEffectingSystem<V, D>::Side &) {
          return F(Get);
        };
      },
      [&System](const V &X) { return System.initial(X); });
  return runTwoPhaseSide(Wrapped, X0, Options, MaxNarrowRounds,
                         LocalizedAscending);
}

} // namespace warrow::engine

#endif // WARROW_ENGINE_STRATEGIES_TWO_PHASE_LOCAL_H
