//===- engine/strategies/recursive_descent.h - RLD (Fig. 5) -----*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recursive local solver RLD of Hofmann, Karbyshev & Seidl (SAS'10),
/// reproduced from the paper's Figure 5:
///
///     let rec solve x =
///       if x ∉ stable then
///         stable <- stable ∪ {x};
///         tmp <- s[x] ⊕ f_x (eval x);
///         if tmp != s[x] then
///           W <- infl[x];
///           s[x] <- tmp; infl[x] <- [];
///           stable <- stable \ W;
///           foreach y in W do solve y
///     and eval x y =
///       solve y; infl[y] <- infl[y] ∪ {x}; s[y]
///     in stable <- {}; infl <- {}; s <- {}; solve x0; s
///
/// RLD is included as the *baseline the paper repairs*: because `eval`
/// recursively solves every queried unknown, one right-hand side may be
/// evaluated against several intermediate assignments, so RLD is not a
/// generic solver in the paper's sense — with ⊕ = ⊟ it can return
/// non-⊟-solutions even when it terminates (Section 5). The test suite
/// exhibits such a case and shows SLR fixing it.
///
/// RLD recurses without any queue: per the QueueMax convention (stats.h)
/// it reports no pending-set watermark (0).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STRATEGIES_RECURSIVE_DESCENT_H
#define WARROW_ENGINE_STRATEGIES_RECURSIVE_DESCENT_H

#include "engine/instr.h"
#include "eqsys/local_system.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace warrow::engine {

/// Runs RLD for the interesting unknown \p X0.
template <typename V, typename D, typename C>
PartialSolution<V, D> runRecursiveDescent(const LocalSystem<V, D> &System,
                                          const V &X0, C &&Combine,
                                          const SolverOptions &Options = {}) {
  PartialSolution<V, D> Result;
  Instrumentation Instr(Result.Stats, Options);
  std::unordered_set<V> Stable;
  std::unordered_map<V, std::unordered_set<V>> Infl;
  bool Failed = false;

  // First-sight slot of each unknown = its trace event id (tracing only:
  // Slot fills DiscoveryOrder as a side effect, so it must not run on
  // untraced runs).
  std::unordered_map<V, uint64_t> SlotOf;
  auto Slot = [&](const V &Y) -> uint64_t {
    auto [It, Fresh] = SlotOf.emplace(Y, Result.DiscoveryOrder.size());
    if (Fresh)
      Result.DiscoveryOrder.push_back(Y);
    return It->second;
  };

  // `s` defaults any unseen unknown to its initial value.
  auto ValueOf = [&](const V &Y) -> D & {
    auto It = Result.Sigma.find(Y);
    if (It == Result.Sigma.end())
      It = Result.Sigma.emplace(Y, System.initial(Y)).first;
    return It->second;
  };

  std::function<void(const V &)> Solve = [&](const V &X) {
    if (Failed || Stable.count(X))
      return;
    Stable.insert(X);
    if (Instr.budgetExhausted()) {
      Failed = true;
      return;
    }
    Instr.chargeEval();
    if (Instr.tracing())
      Instr.trace().rhsBegin(Slot(X));
    typename LocalSystem<V, D>::Get Eval = [&, X](const V &Y) -> D {
      Solve(Y);
      Infl[Y].insert(X);
      if (Instr.tracing())
        Instr.trace().dependency(Slot(X), Slot(Y));
      return ValueOf(Y);
    };
    D New = System.rhs(X)(Eval);
    if (Instr.tracing())
      Instr.trace().rhsEnd(Slot(X));
    D &SlotRef = ValueOf(X);
    D Tmp = Combine(X, SlotRef, New);
    if (Tmp == SlotRef)
      return;
    if (Instr.tracing())
      Instr.trace().update(Slot(X), SlotRef, New, Tmp);
    std::unordered_set<V> W = std::move(Infl[X]);
    SlotRef = Tmp;
    Instr.chargeUpdate();
    Infl[X].clear();
    for (const V &Y : W)
      Stable.erase(Y);
    if (Instr.tracing())
      for (const V &Y : W)
        Instr.trace().destabilize(Slot(Y), Slot(X));
    for (const V &Y : W)
      Solve(Y);
  };

  Solve(X0);
  Result.Stats.Converged = !Failed;
  Result.Stats.VarsSeen = Result.Sigma.size();
  return Result;
}

} // namespace warrow::engine

#endif // WARROW_ENGINE_STRATEGIES_RECURSIVE_DESCENT_H
