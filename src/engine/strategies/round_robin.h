//===- engine/strategies/round_robin.h - RR strategy (Fig. 1) ---*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The round-robin iteration strategy RR of the paper's Figure 1:
///
///     do {
///       dirty <- false;
///       forall (x in X) {
///         new <- sigma[x] ⊕ f_x(sigma);
///         if (sigma[x] != new) { sigma[x] <- new; dirty <- true; }
///       }
///     } while (dirty);
///
/// RR treats right-hand sides as black boxes (no dependency information
/// needed) and works for any combine operator ⊕ — but, as the paper's
/// Example 1 shows, it may diverge under ⊟ even for finite monotonic
/// systems. Divergence is reported via `Stats.Converged`.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STRATEGIES_ROUND_ROBIN_H
#define WARROW_ENGINE_STRATEGIES_ROUND_ROBIN_H

#include "engine/dense_core.h"

namespace warrow::engine {

/// Runs round-robin iteration with combine operator \p Combine, starting
/// from the system's initial assignment.
template <typename D, typename C>
SolveResult<D> runRoundRobin(const DenseSystem<D> &System, C &&Combine,
                             const SolverOptions &Options = {}) {
  DenseCore<D> Core(System, Options);
  // The pending set of a sweep strategy is the whole swept universe.
  Core.instr().noteSweepSet(System.size());

  bool Dirty = true;
  while (Dirty) {
    Dirty = false;
    for (Var X = 0; X < System.size(); ++X) {
      if (Core.outOfBudget())
        return Core.take();
      if (Core.step(X, Combine) == StepOutcome::Changed)
        Dirty = true;
    }
  }
  return Core.take();
}

} // namespace warrow::engine

#endif // WARROW_ENGINE_STRATEGIES_ROUND_ROBIN_H
