//===- engine/state_io.h - Solver state text serialization -------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization for SolverState (engine/solver_state.h), following
/// the trace serializer's contract (src/trace/serialize.h): the format is
/// bijective — `parseSolverState(serializeSolverState(S)) == S` — and
/// parsing returns nullopt on any malformed input instead of guessing.
///
/// The format is token-oriented rather than line-oriented because unknown
/// and value payloads are produced by caller-supplied codecs and may
/// contain arbitrary bytes; every payload travels as a netstring
/// `<len>:<bytes>`, so whitespace inside payloads cannot confuse the
/// reader. Layout (newlines are cosmetic):
///
///     warrow-solver-state v1
///     vars <N>
///     v <var>                          one per slot
///     sigma
///     d <value>                        one per slot
///     infl
///     i <k> <slot>...                  one per slot
///     flags
///     f <stable> <wp> <side>           one per slot
///     cache
///     c <valid> <value> <k> r <slot> <value> ...
///     cells <M>
///     x <target> <contributor> <value>
///     end
///
/// Codecs: `EncodeVar(V) -> std::string`, `DecodeVar(std::string) ->
/// std::optional<V>`, and the same pair for D. A codec returning nullopt
/// fails the whole parse.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_STATE_IO_H
#define WARROW_ENGINE_STATE_IO_H

#include "engine/solver_state.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace warrow::engine {

namespace state_io_detail {

inline void putNetstring(std::string &Out, const std::string &Bytes) {
  Out += std::to_string(Bytes.size());
  Out += ':';
  Out += Bytes;
}

/// Whitespace-separated token reader with netstring support; sticky
/// failure (every accessor no-ops once `Ok` dropped).
class Cursor {
public:
  explicit Cursor(std::string_view Text) : Text(Text) {}

  bool ok() const { return Ok; }

  /// Consumes the exact keyword \p Word.
  void keyword(std::string_view Word) {
    std::string_view Tok = token();
    if (Tok != Word)
      Ok = false;
  }

  uint64_t u64() {
    std::string_view Tok = token();
    if (!Ok || Tok.empty())
      return fail();
    uint64_t Value = 0;
    for (char C : Tok) {
      if (C < '0' || C > '9')
        return fail();
      if (Value > (UINT64_MAX - (C - '0')) / 10)
        return fail();
      Value = Value * 10 + static_cast<uint64_t>(C - '0');
    }
    return Value;
  }

  bool flag() {
    uint64_t Value = u64();
    if (Value > 1)
      Ok = false;
    return Value != 0;
  }

  /// Reads one netstring payload.
  std::string netstring() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    if (Pos == Start || Pos >= Text.size() || Text[Pos] != ':') {
      Ok = false;
      return {};
    }
    uint64_t Len = 0;
    for (size_t I = Start; I < Pos; ++I) {
      if (Len > (UINT64_MAX - (Text[I] - '0')) / 10) {
        Ok = false;
        return {};
      }
      Len = Len * 10 + static_cast<uint64_t>(Text[I] - '0');
    }
    ++Pos; // ':'
    if (Len > Text.size() - Pos) {
      Ok = false;
      return {};
    }
    std::string Bytes(Text.substr(Pos, Len));
    Pos += Len;
    return Bytes;
  }

  /// Reads one whitespace-delimited token (fails at end of input). For
  /// callers choosing between keyword alternatives.
  std::string_view word() { return token(); }

  /// True when only trailing whitespace remains.
  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

private:
  uint64_t fail() {
    Ok = false;
    return 0;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\n' || Text[Pos] == '\t' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  std::string_view token() {
    skipSpace();
    if (Pos >= Text.size()) {
      Ok = false;
      return {};
    }
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != ' ' && Text[Pos] != '\n' &&
           Text[Pos] != '\t' && Text[Pos] != '\r')
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  std::string_view Text;
  size_t Pos = 0;
  bool Ok = true;
};

} // namespace state_io_detail

template <typename V, typename D, typename VEnc, typename DEnc>
std::string serializeSolverState(const SolverState<V, D> &S,
                                 VEnc &&EncodeVar, DEnc &&EncodeValue) {
  using state_io_detail::putNetstring;
  std::string Out;
  const size_t N = S.size();
  Out += "warrow-solver-state v1\n";
  Out += "vars " + std::to_string(N) + "\n";
  for (const V &X : S.Vars) {
    Out += "v ";
    putNetstring(Out, EncodeVar(X));
    Out += '\n';
  }
  Out += "sigma\n";
  for (const D &Value : S.Sigma) {
    Out += "d ";
    putNetstring(Out, EncodeValue(Value));
    Out += '\n';
  }
  Out += "infl\n";
  for (const std::vector<uint32_t> &Row : S.Infl) {
    Out += "i " + std::to_string(Row.size());
    for (uint32_t Slot : Row)
      Out += ' ' + std::to_string(Slot);
    Out += '\n';
  }
  Out += "flags\n";
  for (size_t I = 0; I < N; ++I)
    Out += "f " + std::to_string(int(S.Stable[I])) + ' ' +
           std::to_string(int(S.WideningPoint[I])) + ' ' +
           std::to_string(int(S.SideEffected[I])) + '\n';
  Out += "cache\n";
  for (const auto &Entry : S.Cache) {
    Out += "c " + std::to_string(int(Entry.Valid)) + ' ';
    // Invalid entries carry no meaning (the state's equality ignores
    // their stale reads/value); serialize them empty for a clean
    // round trip.
    if (!Entry.Valid) {
      putNetstring(Out, std::string());
      Out += " 0\n";
      continue;
    }
    putNetstring(Out, EncodeValue(Entry.Value));
    Out += ' ' + std::to_string(Entry.Reads.size());
    for (const auto &[Slot, Value] : Entry.Reads) {
      Out += " r " + std::to_string(Slot) + ' ';
      putNetstring(Out, EncodeValue(Value));
    }
    Out += '\n';
  }
  Out += "cells " + std::to_string(S.Cells.size()) + "\n";
  for (const auto &Cell : S.Cells) {
    Out += "x ";
    putNetstring(Out, EncodeVar(Cell.Target));
    Out += ' ';
    putNetstring(Out, EncodeVar(Cell.Contributor));
    Out += ' ';
    putNetstring(Out, EncodeValue(Cell.Value));
    Out += '\n';
  }
  Out += "end\n";
  return Out;
}

template <typename V, typename D, typename VDec, typename DDec>
std::optional<SolverState<V, D>>
parseSolverState(std::string_view Text, VDec &&DecodeVar,
                 DDec &&DecodeValue) {
  state_io_detail::Cursor In(Text);
  SolverState<V, D> S;
  In.keyword("warrow-solver-state");
  In.keyword("v1");
  In.keyword("vars");
  uint64_t N = In.u64();
  if (!In.ok() || N > Text.size()) // Cheap sanity bound on slot count.
    return std::nullopt;
  S.Vars.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    In.keyword("v");
    std::optional<V> X = DecodeVar(In.netstring());
    if (!In.ok() || !X)
      return std::nullopt;
    S.Vars.push_back(std::move(*X));
  }
  In.keyword("sigma");
  S.Sigma.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    In.keyword("d");
    std::optional<D> Value = DecodeValue(In.netstring());
    if (!In.ok() || !Value)
      return std::nullopt;
    S.Sigma.push_back(std::move(*Value));
  }
  In.keyword("infl");
  S.Infl.resize(N);
  for (uint64_t I = 0; I < N; ++I) {
    In.keyword("i");
    uint64_t K = In.u64();
    if (!In.ok() || K > Text.size())
      return std::nullopt;
    S.Infl[I].reserve(K);
    for (uint64_t J = 0; J < K; ++J) {
      uint64_t Slot = In.u64();
      if (!In.ok() || Slot >= N)
        return std::nullopt;
      S.Infl[I].push_back(static_cast<uint32_t>(Slot));
    }
  }
  In.keyword("flags");
  S.Stable.resize(N);
  S.WideningPoint.resize(N);
  S.SideEffected.resize(N);
  for (uint64_t I = 0; I < N; ++I) {
    In.keyword("f");
    S.Stable[I] = In.flag() ? 1 : 0;
    S.WideningPoint[I] = In.flag() ? 1 : 0;
    S.SideEffected[I] = In.flag() ? 1 : 0;
    if (!In.ok())
      return std::nullopt;
  }
  In.keyword("cache");
  S.Cache.resize(N);
  for (uint64_t I = 0; I < N; ++I) {
    In.keyword("c");
    bool Valid = In.flag();
    std::string ValueBytes = In.netstring();
    uint64_t K = In.u64();
    if (!In.ok() || K > Text.size())
      return std::nullopt;
    auto &Entry = S.Cache[I];
    Entry.Valid = Valid;
    if (Valid) {
      std::optional<D> Value = DecodeValue(ValueBytes);
      if (!Value)
        return std::nullopt;
      Entry.Value = std::move(*Value);
    } else if (!ValueBytes.empty() || K != 0) {
      return std::nullopt;
    }
    Entry.Reads.reserve(K);
    for (uint64_t J = 0; J < K; ++J) {
      In.keyword("r");
      uint64_t Slot = In.u64();
      std::optional<D> Value = DecodeValue(In.netstring());
      if (!In.ok() || Slot >= N || !Value)
        return std::nullopt;
      Entry.Reads.emplace_back(static_cast<uint32_t>(Slot),
                               std::move(*Value));
    }
  }
  In.keyword("cells");
  uint64_t M = In.u64();
  if (!In.ok() || M > Text.size())
    return std::nullopt;
  S.Cells.reserve(M);
  for (uint64_t I = 0; I < M; ++I) {
    In.keyword("x");
    std::optional<V> Target = DecodeVar(In.netstring());
    std::optional<V> Contributor = DecodeVar(In.netstring());
    std::optional<D> Value = DecodeValue(In.netstring());
    if (!In.ok() || !Target || !Contributor || !Value)
      return std::nullopt;
    S.Cells.push_back({std::move(*Target), std::move(*Contributor),
                       std::move(*Value)});
  }
  In.keyword("end");
  if (!In.ok() || !In.atEnd())
    return std::nullopt;
  return S;
}

} // namespace warrow::engine

#endif // WARROW_ENGINE_STATE_IO_H
