//===- engine/registry.h - Runtime solver registry --------------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime solver registry: one named entry per solver instantiation
/// the project ships — iteration strategy × combine-operator policy plus
/// capability flags. The registry is the single source of truth for
/// `warrow-analyze --solver=NAME` / `--list-solvers`, for the bench
/// binaries' string lookup, and for the cross-product matrix test (which
/// asserts that every entry is exercised — no silently unregistered
/// solver).
///
/// Lookup is case-insensitive so historical bench labels ("RR", "SW")
/// and CLI spellings ("rr", "sw") resolve to the same entry.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_REGISTRY_H
#define WARROW_ENGINE_REGISTRY_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace warrow::engine {

/// Iteration-strategy policies of the engine (layer 2). Dense strategies
/// iterate a DenseSystem; local strategies solve a LocalSystem or
/// SideEffectingSystem on demand from one interesting unknown.
enum class StrategyKind : uint8_t {
  RoundRobin,              // Fig. 1 sweep.
  StructuredRoundRobin,    // Fig. 3 cursor.
  WorklistLifo,            // Fig. 2, LIFO extraction.
  WorklistFifo,            // Fig. 2, FIFO extraction.
  PriorityWorklist,        // Fig. 4, identity priority.
  OrderedPriorityWorklist, // Fig. 4 under an explicit rank.
  SccParallel,             // Fig. 4 over the condensation, thread pool.
  TwoPhaseSW,              // ▽-then-△ driver over SW.
  TwoPhaseRR,              // ▽-then-△ driver over RR (engine-new).
  LocalRoundRobin,         // Section 5 sketch (growing known set).
  RecursiveDescent,        // Fig. 5 (RLD baseline).
  Slr,                     // Fig. 6.
  SlrPlus,                 // Section 6 (side-effecting).
  TwoPhaseLocal,           // ▽-then-△ over ascending SLR+.
  TwoPhaseLocalized,       // Same with localized phase-1 ▽ (engine-new).
  ParallelSlrPlus,         // Work-stealing SLR+ over the condensation.
  ParallelTwoPhase,        // ▽-then-△ over ascending parallel SLR+.
};

/// Combine-operator policy baked into a registered instantiation.
/// `Parametric` entries accept any ⊕ at the call site (the paper's
/// genericity); the others hard-wire the operator the analysis driver
/// uses under that name.
enum class OperatorKind : uint8_t {
  Parametric,        // Caller supplies ⊕ (⊔, ▽, ⊟, ⊟ₖ, ...).
  Widen,             // ⊕ = ▽ throughout.
  Warrow,            // ⊕ = ⊟ (degrading/threshold variants per options).
  WidenNarrowPhases, // Fixed ▽-phase then △-phase driver.
};

/// Capability flags of a registered solver.
enum SolverCaps : uint32_t {
  CapDense = 1u << 0,         // Solves DenseSystem.
  CapLocal = 1u << 1,         // Solves LocalSystem (demand-driven).
  CapSideEffecting = 1u << 2, // Solves SideEffectingSystem.
  CapFixedOperator = 1u << 3, // Operator is hard-wired (not Parametric).
  CapParallel = 1u << 4,      // Multi-threaded.
  CapAnalysis = 1u << 5,      // Selectable as warrow-analyze backend.
  CapNew = 1u << 6,           // Combination new with the engine layering.
};

/// One registered solver instantiation.
struct SolverInfo {
  const char *Name;        // Canonical (lowercase) lookup name.
  const char *Description; // One line for --list-solvers.
  StrategyKind Strategy;
  OperatorKind Operator;
  uint32_t Caps;

  bool hasCap(SolverCaps Cap) const { return (Caps & Cap) != 0; }
};

/// All registered solvers, in listing order.
const std::vector<SolverInfo> &solverRegistry();

/// Case-insensitive lookup; null when \p Name is not registered.
const SolverInfo *findSolver(std::string_view Name);

/// Canonical names of all registered solvers, in listing order.
std::vector<std::string> solverNames();

/// The --list-solvers text: one `name  description [tags]` line per
/// entry, shared by the CLI and asserted against in CI.
std::string solverListing();

} // namespace warrow::engine

#endif // WARROW_ENGINE_REGISTRY_H
