//===- engine/dense_core.h - Core loop state for dense solvers --*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's core layer for *dense* systems: owns the assignment σ,
/// the evaluation context (the `Get` handed to right-hand sides, with
/// dependency-event emission), the budget, and the verified
/// evaluate-combine-apply step shared by every dense iteration strategy.
///
/// A strategy decides *which* unknown to touch next and what to do on a
/// change (destabilize, re-enqueue); the core performs the touch:
///
///     step(x, ⊕):  new <- σ[x] ⊕ f_x(σ);
///                  if (σ[x] != new) { σ[x] <- new; return Changed; }
///
/// instrumented exactly as the paper's cost model counts it (one RhsEval
/// per step, one Update per change) and exactly as the trace vocabulary
/// describes it (rhsBegin/rhsEnd around the evaluation, one update event
/// per change, dependency events from inside `Get`).
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_DENSE_CORE_H
#define WARROW_ENGINE_DENSE_CORE_H

#include "engine/instr.h"
#include "eqsys/dense_system.h"
#include "solvers/stats.h"

namespace warrow::engine {

/// Outcome of one core step.
enum class StepOutcome : uint8_t { Unchanged, Changed };

/// Shared state and the instrumented update step for one dense solver
/// run. Strategies drive it; it never decides iteration order.
template <typename D> class DenseCore {
public:
  DenseCore(const DenseSystem<D> &System, const SolverOptions &Options)
      : System(System), Options(Options), Instr(Result.Stats, Options) {
    Result.Sigma = System.initialAssignment();
    Result.Stats.VarsSeen = System.size();
    Get = [this](Var Y) {
      Instr.trace().dependency(Current, Y);
      return Result.Sigma[Y];
    };
  }

  Instrumentation &instr() { return Instr; }
  const TraceEmitter &trace() const { return Instr.trace(); }
  size_t size() const { return System.size(); }

  /// True when the evaluation budget is exhausted; marks the run as not
  /// converged. Strategies check this *before* extracting the next
  /// unknown, so a budget abort emits no dequeue event (the historical
  /// contract the trace tests pin).
  bool outOfBudget() {
    if (!Instr.budgetExhausted())
      return false;
    Result.Stats.Converged = false;
    return true;
  }

  /// One instrumented evaluate-combine-apply step on \p X.
  template <typename C> StepOutcome step(Var X, C &Combine) {
    Instr.chargeEval();
    if (Instr.tracing())
      Current = X;
    Instr.trace().rhsBegin(X);
    D Rhs = System.eval(X, Get);
    Instr.trace().rhsEnd(X);
    D New = Combine(X, Result.Sigma[X], Rhs);
    if (Result.Sigma[X] == New)
      return StepOutcome::Unchanged;
    Instr.trace().update(X, Result.Sigma[X], Rhs, New);
    Result.Sigma[X] = New;
    Instr.chargeUpdate();
    if (Options.RecordTrace)
      Result.Trace.push_back({X, Result.Sigma[X]});
    return StepOutcome::Changed;
  }

  /// Finishes the run and releases the result.
  SolveResult<D> take() { return std::move(Result); }

private:
  const DenseSystem<D> &System;
  const SolverOptions &Options;
  SolveResult<D> Result;
  Instrumentation Instr; // Binds Result.Stats; must follow Result.
  Var Current = 0;       // Unknown under evaluation, for dependency events.
  typename DenseSystem<D>::GetFn Get;
};

} // namespace warrow::engine

#endif // WARROW_ENGINE_DENSE_CORE_H
