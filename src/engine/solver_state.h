//===- engine/solver_state.h - Externalized solver state ---------*- C++ -*-==//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-class solver state (DESIGN §6i): everything an SLR/SLR+ run
/// accumulates — σ, the influence map, the stable set, localized
/// widening-point marks, the `set[z] != {}` flags, the read cache (which
/// doubles as the dependency records: the exact (slot, value) pairs the
/// last evaluation of each unknown read), and the per-contributor
/// side-effect cells sigma(x,z) — in the same dense slot-indexed
/// representation the engines use internally. A `SolverState` is what
/// `SlrEngine::snapshot()` returns and `SlrEngine::restore()` consumes;
/// the incremental driver (src/analysis/incremental.h) edits one between
/// runs, and engine/state_io.h serializes one to text.
///
/// Invariants a state coming out of a quiescent engine satisfies (and a
/// state handed to `restore` must preserve for soundness):
///  - `Infl[y] ∋ y` for every slot, and `Infl[y] ⊇ {stable x : y was
///    read by x's last evaluation}` — the reverse dependency edges the
///    solver needs to destabilize readers when y moves;
///  - a cache record with `Valid` replays only if every recorded read
///    still matches σ, so stale values force a real re-evaluation;
///  - every cell's target is either a slot with `SideEffected` set, or
///    absent from the slot table entirely (a retracted-then-readopted
///    target the engine re-interns on demand).
///
/// The "called" set of the paper (the on-stack marks) is deliberately
/// absent: it is empty at quiescence, which is the only point where
/// snapshotting is meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef WARROW_ENGINE_SOLVER_STATE_H
#define WARROW_ENGINE_SOLVER_STATE_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace warrow::engine {

/// Dense slot-indexed solver state. \p V is the unknown type, \p D the
/// domain. All per-slot vectors have identical length `size()`.
template <typename V, typename D> struct SolverState {
  /// Last evaluation of one unknown: the (slot, value) pairs read through
  /// `Get` in read order, and the RHS result (before the contribution
  /// join and ⊕). Mirrors the engine's cache entry exactly.
  struct CacheRecord {
    std::vector<std::pair<uint32_t, D>> Reads;
    D Value{};
    bool Valid = false;

    friend bool operator==(const CacheRecord &A, const CacheRecord &B) {
      if (A.Valid != B.Valid)
        return false;
      if (!A.Valid && !B.Valid)
        return true; // Stale reads/value carry no meaning.
      return A.Reads == B.Reads && A.Value == B.Value;
    }
  };

  /// One side-effect contribution cell sigma(contributor, target).
  struct ContribCell {
    V Target{};
    V Contributor{};
    D Value{};
  };

  std::vector<V> Vars;                     ///< Slot -> unknown.
  std::vector<D> Sigma;                    ///< Slot -> value.
  std::vector<std::vector<uint32_t>> Infl; ///< Slot -> influenced slots.
  std::vector<uint8_t> Stable;             ///< Slot -> in `stable`.
  std::vector<uint8_t> WideningPoint;      ///< Slot -> localized ▽ point.
  std::vector<uint8_t> SideEffected;       ///< Slot -> set[z] != {}.
  std::vector<CacheRecord> Cache;          ///< Slot -> last evaluation.
  std::vector<ContribCell> Cells;          ///< sigma(x,z) cells, any order.

  size_t size() const { return Vars.size(); }

  /// Cells as target -> (contributor -> value), the order-insensitive
  /// view equality and the engine's own `Contribs` map use.
  std::unordered_map<V, std::unordered_map<V, D>> cellMap() const {
    std::unordered_map<V, std::unordered_map<V, D>> M;
    for (const ContribCell &Cell : Cells)
      M[Cell.Target][Cell.Contributor] = Cell.Value;
    return M;
  }

  /// Structural equality; cell order is irrelevant.
  friend bool operator==(const SolverState &A, const SolverState &B) {
    return A.Vars == B.Vars && A.Sigma == B.Sigma && A.Infl == B.Infl &&
           A.Stable == B.Stable && A.WideningPoint == B.WideningPoint &&
           A.SideEffected == B.SideEffected && A.Cache == B.Cache &&
           A.cellMap() == B.cellMap();
  }
};

} // namespace warrow::engine

#endif // WARROW_ENGINE_SOLVER_STATE_H
