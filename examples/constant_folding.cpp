//===- examples/constant_folding.cpp - The second analysis client ---------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates that the solver machinery is generic over the value
/// domain: the same CFGs and the same SW solver run a *constant
/// propagation* analysis over the flat lattice, side by side with the
/// interval analysis. On finite-height domains join already acts as a
/// widening, so ⊟ and plain join coincide — the paper's operator matters
/// exactly when chains are infinite.
///
//===----------------------------------------------------------------------===//

#include "analysis/constprop.h"
#include "analysis/intra.h"
#include "lang/parser.h"
#include "lattice/combine.h"
#include "solvers/sw.h"

#include <cstdio>

using namespace warrow;

static const char *ProgramSource = R"(
int main() {
  int base = 40;
  int scale = 2;
  int offset = base + scale;
  int x = unknown();
  int y = offset;
  if (x > 0)
    y = offset + 0;
  int limit = offset * scale;
  int i = 0;
  while (i < limit)
    i = i + 1;
  return i + y;
}
)";

int main() {
  DiagnosticEngine Diags;
  auto P = parseProgram(ProgramSource, Diags);
  if (!P) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }
  ProgramCfg Cfgs = buildProgramCfg(*P);

  std::printf("program:\n%s\n", ProgramSource);

  // Constant propagation (flat lattice, finite height).
  ConstPropSystem CP = buildConstPropSystem(*P, Cfgs, 0);
  SolveResult<CpEnv> CpResult = solveSW(CP.System, JoinCombine{});
  std::printf("constant propagation at exit (SW + join):\n  %s\n",
              CpResult.Sigma[CP.VarOfNode[Cfg::ExitNode]]
                  .str(P->Symbols)
                  .c_str());

  // Interval analysis (infinite height: ⊟ earns its keep).
  IntraSystem IV = buildIntraSystem(*P, Cfgs, 0,
                                    Cfgs.cfgOf(0).reversePostOrder());
  SolveResult<AbsValue> IvResult = solveSW(IV.System, WarrowCombine{});
  std::printf("interval analysis at exit (SW + ⊟):\n  %s\n",
              IvResult.Sigma[IV.VarOfNode[Cfg::ExitNode]]
                  .str(P->Symbols)
                  .c_str());

  std::printf("\nsolver stats: constprop %s\n              intervals %s\n",
              CpResult.Stats.str().c_str(), IvResult.Stats.str().c_str());
  std::printf("\nNote how constant propagation pins base/scale/offset/limit"
              "\nexactly while intervals bound the loop counter i — and how"
              "\nthe same generic solver ran both.\n");
  return 0;
}
