//===- examples/race_detection.cpp - Lockset races and the ⊟-operator ----------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The race-flavored version of the paper's Example 7 precision gap. Two
/// programs:
///
///  - `racy`: the worker forgets the lock, so the detector must report a
///    race on `g` under every solver strategy (all are sound).
///  - `guarded`: every live access holds `m`; the only bare write sits in
///    dead code reachable *only* under widened loop bounds. The ⊟-solver
///    narrows the bound, refutes the guard and retracts the stale access
///    contribution; the two-phase baseline freezes the accumulator after
///    its widening phase and keeps the false alarm.
///
//===----------------------------------------------------------------------===//

#include "analysis/races.h"
#include "lang/parser.h"

#include <cstdio>

using namespace warrow;

static const char *RacySource = R"(
int g = 0;
mutex m;

void worker(int n) {
  int j = 0;
  while (j < n) {
    g = g + 1;
    j = j + 1;
  }
}

int main() {
  spawn worker(5);
  lock(m);
  g = g + 2;
  unlock(m);
  return 0;
}
)";

static const char *GuardedSource = R"(
int g = 0;
mutex m;

void worker(int n) {
  int j = 0;
  while (j < n) {
    lock(m);
    g = g + 1;
    unlock(m);
    j = j + 1;
  }
}

int main() {
  spawn worker(10);
  int i = 0;
  while (i < 10) {
    lock(m);
    g = g + 1;
    unlock(m);
    i = i + 1;
  }
  if (i > 10) {
    g = 0;
  }
  return i;
}
)";

static void analyze(const char *Title, const char *Source) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Source, Diags);
  if (!P) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return;
  }
  ProgramCfg Cfgs = buildProgramCfg(*P);
  std::printf("=== %s ===\n%s\n", Title, Source);

  struct Row {
    const char *Name;
    SolverChoice Choice;
  };
  for (Row R : {Row{"warrow (⊟)", SolverChoice::Warrow},
                Row{"two-phase", SolverChoice::TwoPhase},
                Row{"widen-only", SolverChoice::WidenOnly}}) {
    RaceAnalysis Analysis(*P, Cfgs, AnalysisOptions{});
    RaceAnalysisResult Result = Analysis.run(R.Choice);
    std::printf("%-12s %zu race alarm(s)\n", R.Name, Result.Races.size());
    for (const RaceFinding &F : Result.Races)
      std::printf("             %s\n", F.str(*P).c_str());
  }
  std::printf("\n");
}

int main() {
  analyze("racy: worker writes g without the lock", RacySource);
  analyze("guarded: bare write only in dead code", GuardedSource);
  std::printf("The guarded program shows the precision gap: the frozen\n"
              "two-phase accumulators keep the access recorded under the\n"
              "widened loop bound, while ⊟ replaces it with bottom.\n");
  return 0;
}
