//===- examples/interproc_globals.cpp - The paper's Example 7 -------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The motivating program of the paper's Section 6 (Example 7): a global
/// written from two calling contexts of `f`. Flow-insensitive analysis
/// of `g` with context-sensitive calls requires side-effecting
/// constraints — and narrowing those soundly is exactly what SLR+ with ⊟
/// contributes. This example prints the value of g under the three solver
/// strategies, reproducing Example 9's [0,3] for the ⊟-solver.
///
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "lang/parser.h"

#include <cstdio>

using namespace warrow;

static const char *ProgramSource = R"(
int g = 0;
void f(int b) {
  if (b)
    g = b + 1;
  else
    g = -b - 1;
  return;
}
int main() {
  f(1);
  f(2);
  return 0;
}
)";

int main() {
  DiagnosticEngine Diags;
  auto P = parseProgram(ProgramSource, Diags);
  if (!P) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }
  ProgramCfg Cfgs = buildProgramCfg(*P);
  Symbol G = P->Symbols.lookup("g");

  std::printf("program (the paper's Example 7):\n%s\n", ProgramSource);

  for (bool ContextSensitive : {false, true}) {
    AnalysisOptions Options;
    Options.ContextSensitive = ContextSensitive;
    InterprocAnalysis Analysis(*P, Cfgs, Options);

    AnalysisResult Widen = Analysis.run(SolverChoice::WidenOnly);
    AnalysisResult Classic = Analysis.run(SolverChoice::TwoPhase);
    AnalysisResult Warrow = Analysis.run(SolverChoice::Warrow);

    std::printf("%s analysis:\n",
                ContextSensitive ? "context-sensitive" : "context-insensitive");
    std::printf("  widening only : g = %-10s (%llu unknowns)\n",
                Widen.globalValue(G).str().c_str(),
                static_cast<unsigned long long>(Widen.NumUnknowns));
    std::printf("  two-phase WN  : g = %-10s (global frozen: classical "
                "narrowing is unsound on side effects)\n",
                Classic.globalValue(G).str().c_str());
    std::printf("  ⊟-solver SLR+ : g = %-10s (the paper's Example 9 "
                "result)\n\n",
                Warrow.globalValue(G).str().c_str());
  }
  return 0;
}
