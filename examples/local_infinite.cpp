//===- examples/local_infinite.cpp - Local solving of infinite systems ----------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Example 5: an *infinite* system of equations over ℕ∪{∞},
///
///     y_{2n}   = max(y_{y_{2n}}, n)        (self-indexing!)
///     y_{2n+1} = y_{6n+4}
///
/// No solver can tabulate all unknowns — but a *local* solver queries
/// only what the unknown of interest needs. SLR solving for y1 touches
/// exactly {y0, y1, y2, y4} (Example 6).
///
//===----------------------------------------------------------------------===//

#include "lattice/combine.h"
#include "solvers/slr.h"
#include "workloads/eq_generators.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace warrow;

int main() {
  LocalSystem<uint64_t, NatInf> System = paperExampleFive();

  std::printf("solving the infinite system of Example 5 for y1...\n\n");
  PartialSolution<uint64_t, NatInf> Solution =
      solveSLR(System, uint64_t{1}, JoinCombine{});

  std::vector<uint64_t> Dom;
  for (const auto &[Y, Value] : Solution.Sigma)
    Dom.push_back(Y);
  std::sort(Dom.begin(), Dom.end());

  std::printf("partial solution (dom has %zu of infinitely many "
              "unknowns):\n",
              Dom.size());
  for (uint64_t Y : Dom)
    std::printf("  y%llu = %s\n", static_cast<unsigned long long>(Y),
                Solution.value(Y).str().c_str());

  std::printf("\nsolver stats: %s\n", Solution.Stats.str().c_str());
  std::printf("(paper's Example 6: dom = {y0, y1, y2, y4}, y1 = 2)\n");

  // The same works with ⊟ — Theorem 3 guarantees termination whenever
  // only finitely many unknowns are encountered.
  PartialSolution<uint64_t, NatInf> WithWarrow =
      solveSLR(System, uint64_t{1}, WarrowCombine{});
  std::printf("with ⊟: y1 = %s after %llu evaluations\n",
              WithWarrow.value(1).str().c_str(),
              static_cast<unsigned long long>(WithWarrow.Stats.RhsEvals));
  return 0;
}
