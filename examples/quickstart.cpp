//===- examples/quickstart.cpp - First steps with warrow ------------------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build a small equation system over the interval lattice,
/// watch plain widening overshoot, and solve it in one go with the
/// paper's combined ⊟ operator.
///
/// The system models the loop `x = 0; while (x < 42) x = x + 1;`:
///
///     head = [0,0] ⊔ (body + [1,1])
///     body = head ⊓ (-inf, 41]
///     exit = head ⊓ [42, +inf)
///
//===----------------------------------------------------------------------===//

#include "lattice/combine.h"
#include "lattice/interval.h"
#include "solvers/sw.h"
#include "solvers/two_phase.h"

#include <cstdio>

using namespace warrow;

int main() {
  DenseSystem<Interval> System;
  Var Head = System.addVar("head");
  Var Body = System.addVar("body");
  Var Exit = System.addVar("exit");

  using Get = DenseSystem<Interval>::GetFn;
  System.define(
      Head,
      [=](const Get &Sigma) {
        return Interval::constant(0).join(
            Sigma(Body).add(Interval::constant(1)));
      },
      {Body});
  System.define(
      Body,
      [=](const Get &Sigma) { return Sigma(Head).meet(Interval::atMost(Bound(41))); },
      {Head});
  System.define(
      Exit,
      [=](const Get &Sigma) {
        return Sigma(Head).meet(Interval::atLeast(Bound(42)));
      },
      {Head});

  std::printf("Solving x = 0; while (x < 42) x = x + 1;\n\n");

  // 1. Pure widening: sound but overshoots to +inf at the loop head.
  SolveResult<Interval> Widened = solveSW(System, WidenCombine{});
  std::printf("widening only:   head = %-12s exit = %s\n",
              Widened.Sigma[Head].str().c_str(),
              Widened.Sigma[Exit].str().c_str());

  // 2. Classical two phases: a separate narrowing pass repairs it.
  SolveResult<Interval> Classic = solveTwoPhase(System);
  std::printf("two-phase WN:    head = %-12s exit = %s\n",
              Classic.Sigma[Head].str().c_str(),
              Classic.Sigma[Exit].str().c_str());

  // 3. The paper's ⊟: one interleaved pass, same precision, and it keeps
  //    working when systems are non-monotonic (where phase two would be
  //    unsound).
  SolveResult<Interval> Warrow = solveSW(System, WarrowCombine{});
  std::printf("combined ⊟:      head = %-12s exit = %s\n",
              Warrow.Sigma[Head].str().c_str(),
              Warrow.Sigma[Exit].str().c_str());

  std::printf("\nsolver stats (⊟): %s\n", Warrow.Stats.str().c_str());
  return 0;
}
