//===- examples/loop_invariants.cpp - Analyzing a mini-C program ----------------=//
//
// Part of the warrow project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end use of the language substrate: parse a mini-C program,
/// build CFGs, run the ⊟-based interval analysis, and print the
/// discovered invariant at every source line of `main`.
///
//===----------------------------------------------------------------------===//

#include "analysis/interproc.h"
#include "lang/parser.h"
#include "lang/pretty.h"

#include <cstdio>
#include <map>

using namespace warrow;

static const char *ProgramSource = R"(
int main() {
  int n = unknown();
  if (n < 0)
    n = 0;
  if (n > 100)
    n = 100;
  int i = 0;
  int sum = 0;
  while (i < n) {
    sum = sum + i;
    i = i + 1;
  }
  return sum;
}
)";

int main() {
  DiagnosticEngine Diags;
  auto P = parseProgram(ProgramSource, Diags);
  if (!P) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }
  ProgramCfg Cfgs = buildProgramCfg(*P);
  InterprocAnalysis Analysis(*P, Cfgs, AnalysisOptions{});
  AnalysisResult Result = Analysis.run(SolverChoice::Warrow);
  if (!Result.Stats.Converged) {
    std::fprintf(stderr, "analysis did not converge\n");
    return 1;
  }

  std::printf("program:\n%s\n", ProgramSource);
  std::printf("invariants per source line (joined over program points):\n");

  size_t MainIdx = P->functionIndex(P->Symbols.lookup("main"));
  const Cfg &G = Cfgs.cfgOf(MainIdx);
  std::map<uint32_t, AbsValue> PerLine;
  for (uint32_t Node = 0; Node < G.numNodes(); ++Node) {
    uint32_t Line = G.lineOf(Node);
    if (Line == 0)
      continue;
    AbsValue &Slot = PerLine[Line];
    Slot = Slot.join(Result.at(static_cast<uint32_t>(MainIdx), Node));
  }
  for (const auto &[Line, Value] : PerLine)
    std::printf("  line %2u: %s\n", Line, Value.str(P->Symbols).c_str());

  AbsValue Exit = Result.at(static_cast<uint32_t>(MainIdx), Cfg::ExitNode);
  std::printf("\nreturn value: %s\n",
              Exit.isEnv()
                  ? Exit.envValue()
                        .get(P->Symbols.lookup("$ret"))
                        .str()
                        .c_str()
                  : "unreachable");
  std::printf("solver stats: %s\n", Result.Stats.str().c_str());
  return 0;
}
