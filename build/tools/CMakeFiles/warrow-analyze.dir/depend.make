# Empty dependencies file for warrow-analyze.
# This may be replaced when dependencies are built.
