file(REMOVE_RECURSE
  "CMakeFiles/warrow-analyze.dir/warrow_analyze.cpp.o"
  "CMakeFiles/warrow-analyze.dir/warrow_analyze.cpp.o.d"
  "warrow-analyze"
  "warrow-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warrow-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
