file(REMOVE_RECURSE
  "CMakeFiles/warrow-run.dir/warrow_run.cpp.o"
  "CMakeFiles/warrow-run.dir/warrow_run.cpp.o.d"
  "warrow-run"
  "warrow-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warrow-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
