# Empty dependencies file for warrow-run.
# This may be replaced when dependencies are built.
