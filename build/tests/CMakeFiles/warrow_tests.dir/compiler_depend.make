# Empty compiler generated dependencies file for warrow_tests.
# This may be replaced when dependencies are built.
