
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cfg_test.cpp" "tests/CMakeFiles/warrow_tests.dir/cfg_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/cfg_test.cpp.o.d"
  "/root/repo/tests/checks_test.cpp" "tests/CMakeFiles/warrow_tests.dir/checks_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/checks_test.cpp.o.d"
  "/root/repo/tests/combine_test.cpp" "tests/CMakeFiles/warrow_tests.dir/combine_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/combine_test.cpp.o.d"
  "/root/repo/tests/constants_test.cpp" "tests/CMakeFiles/warrow_tests.dir/constants_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/constants_test.cpp.o.d"
  "/root/repo/tests/cross_check_test.cpp" "tests/CMakeFiles/warrow_tests.dir/cross_check_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/cross_check_test.cpp.o.d"
  "/root/repo/tests/dense_solvers_test.cpp" "tests/CMakeFiles/warrow_tests.dir/dense_solvers_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/dense_solvers_test.cpp.o.d"
  "/root/repo/tests/domains_test.cpp" "tests/CMakeFiles/warrow_tests.dir/domains_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/domains_test.cpp.o.d"
  "/root/repo/tests/env_test.cpp" "tests/CMakeFiles/warrow_tests.dir/env_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/env_test.cpp.o.d"
  "/root/repo/tests/eqsys_test.cpp" "tests/CMakeFiles/warrow_tests.dir/eqsys_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/eqsys_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/warrow_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/interp_test.cpp" "tests/CMakeFiles/warrow_tests.dir/interp_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/interp_test.cpp.o.d"
  "/root/repo/tests/interproc_test.cpp" "tests/CMakeFiles/warrow_tests.dir/interproc_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/interproc_test.cpp.o.d"
  "/root/repo/tests/interval_test.cpp" "tests/CMakeFiles/warrow_tests.dir/interval_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/interval_test.cpp.o.d"
  "/root/repo/tests/intra_test.cpp" "tests/CMakeFiles/warrow_tests.dir/intra_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/intra_test.cpp.o.d"
  "/root/repo/tests/lexer_test.cpp" "tests/CMakeFiles/warrow_tests.dir/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/lexer_test.cpp.o.d"
  "/root/repo/tests/local_solvers_test.cpp" "tests/CMakeFiles/warrow_tests.dir/local_solvers_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/local_solvers_test.cpp.o.d"
  "/root/repo/tests/paper_examples_test.cpp" "tests/CMakeFiles/warrow_tests.dir/paper_examples_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/paper_examples_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/warrow_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/precision_test.cpp" "tests/CMakeFiles/warrow_tests.dir/precision_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/precision_test.cpp.o.d"
  "/root/repo/tests/pretty_test.cpp" "tests/CMakeFiles/warrow_tests.dir/pretty_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/pretty_test.cpp.o.d"
  "/root/repo/tests/properties_test.cpp" "tests/CMakeFiles/warrow_tests.dir/properties_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/properties_test.cpp.o.d"
  "/root/repo/tests/second_domain_test.cpp" "tests/CMakeFiles/warrow_tests.dir/second_domain_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/second_domain_test.cpp.o.d"
  "/root/repo/tests/sema_test.cpp" "tests/CMakeFiles/warrow_tests.dir/sema_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/sema_test.cpp.o.d"
  "/root/repo/tests/slr_plus_test.cpp" "tests/CMakeFiles/warrow_tests.dir/slr_plus_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/slr_plus_test.cpp.o.d"
  "/root/repo/tests/solver_features_test.cpp" "tests/CMakeFiles/warrow_tests.dir/solver_features_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/solver_features_test.cpp.o.d"
  "/root/repo/tests/soundness_test.cpp" "tests/CMakeFiles/warrow_tests.dir/soundness_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/soundness_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/warrow_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/table1_shape_test.cpp" "tests/CMakeFiles/warrow_tests.dir/table1_shape_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/table1_shape_test.cpp.o.d"
  "/root/repo/tests/transfer_test.cpp" "tests/CMakeFiles/warrow_tests.dir/transfer_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/transfer_test.cpp.o.d"
  "/root/repo/tests/verify_test.cpp" "tests/CMakeFiles/warrow_tests.dir/verify_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/verify_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/warrow_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/warrow_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/warrow_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
