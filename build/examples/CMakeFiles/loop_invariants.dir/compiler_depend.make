# Empty compiler generated dependencies file for loop_invariants.
# This may be replaced when dependencies are built.
