file(REMOVE_RECURSE
  "CMakeFiles/local_infinite.dir/local_infinite.cpp.o"
  "CMakeFiles/local_infinite.dir/local_infinite.cpp.o.d"
  "local_infinite"
  "local_infinite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_infinite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
