# Empty compiler generated dependencies file for local_infinite.
# This may be replaced when dependencies are built.
