
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/local_infinite.cpp" "examples/CMakeFiles/local_infinite.dir/local_infinite.cpp.o" "gcc" "examples/CMakeFiles/local_infinite.dir/local_infinite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/warrow_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
