file(REMOVE_RECURSE
  "CMakeFiles/constant_folding.dir/constant_folding.cpp.o"
  "CMakeFiles/constant_folding.dir/constant_folding.cpp.o.d"
  "constant_folding"
  "constant_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constant_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
