# Empty compiler generated dependencies file for constant_folding.
# This may be replaced when dependencies are built.
