# Empty compiler generated dependencies file for interproc_globals.
# This may be replaced when dependencies are built.
