file(REMOVE_RECURSE
  "CMakeFiles/interproc_globals.dir/interproc_globals.cpp.o"
  "CMakeFiles/interproc_globals.dir/interproc_globals.cpp.o.d"
  "interproc_globals"
  "interproc_globals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interproc_globals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
