file(REMOVE_RECURSE
  "CMakeFiles/bench_local_solvers.dir/bench_local_solvers.cpp.o"
  "CMakeFiles/bench_local_solvers.dir/bench_local_solvers.cpp.o.d"
  "bench_local_solvers"
  "bench_local_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
