# Empty compiler generated dependencies file for bench_operator.
# This may be replaced when dependencies are built.
