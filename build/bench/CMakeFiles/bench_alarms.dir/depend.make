# Empty dependencies file for bench_alarms.
# This may be replaced when dependencies are built.
