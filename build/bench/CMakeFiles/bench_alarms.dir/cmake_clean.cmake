file(REMOVE_RECURSE
  "CMakeFiles/bench_alarms.dir/bench_alarms.cpp.o"
  "CMakeFiles/bench_alarms.dir/bench_alarms.cpp.o.d"
  "bench_alarms"
  "bench_alarms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alarms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
