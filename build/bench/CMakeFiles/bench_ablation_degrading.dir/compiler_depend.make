# Empty compiler generated dependencies file for bench_ablation_degrading.
# This may be replaced when dependencies are built.
