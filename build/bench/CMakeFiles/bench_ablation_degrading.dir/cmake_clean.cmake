file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_degrading.dir/bench_ablation_degrading.cpp.o"
  "CMakeFiles/bench_ablation_degrading.dir/bench_ablation_degrading.cpp.o.d"
  "bench_ablation_degrading"
  "bench_ablation_degrading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_degrading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
