# Empty compiler generated dependencies file for bench_ablation_localized.
# This may be replaced when dependencies are built.
