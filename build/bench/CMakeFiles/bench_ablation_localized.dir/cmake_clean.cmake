file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_localized.dir/bench_ablation_localized.cpp.o"
  "CMakeFiles/bench_ablation_localized.dir/bench_ablation_localized.cpp.o.d"
  "bench_ablation_localized"
  "bench_ablation_localized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_localized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
