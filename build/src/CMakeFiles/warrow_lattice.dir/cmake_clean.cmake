file(REMOVE_RECURSE
  "CMakeFiles/warrow_lattice.dir/lattice/interval.cpp.o"
  "CMakeFiles/warrow_lattice.dir/lattice/interval.cpp.o.d"
  "CMakeFiles/warrow_lattice.dir/lattice/thresholds.cpp.o"
  "CMakeFiles/warrow_lattice.dir/lattice/thresholds.cpp.o.d"
  "libwarrow_lattice.a"
  "libwarrow_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warrow_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
