# Empty dependencies file for warrow_lattice.
# This may be replaced when dependencies are built.
