file(REMOVE_RECURSE
  "libwarrow_lattice.a"
)
