file(REMOVE_RECURSE
  "libwarrow_solvers.a"
)
