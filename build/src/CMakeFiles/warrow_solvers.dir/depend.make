# Empty dependencies file for warrow_solvers.
# This may be replaced when dependencies are built.
