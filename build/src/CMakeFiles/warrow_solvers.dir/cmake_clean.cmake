file(REMOVE_RECURSE
  "CMakeFiles/warrow_solvers.dir/solvers/stats.cpp.o"
  "CMakeFiles/warrow_solvers.dir/solvers/stats.cpp.o.d"
  "libwarrow_solvers.a"
  "libwarrow_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warrow_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
