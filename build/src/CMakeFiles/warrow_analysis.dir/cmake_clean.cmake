file(REMOVE_RECURSE
  "CMakeFiles/warrow_analysis.dir/analysis/absvalue.cpp.o"
  "CMakeFiles/warrow_analysis.dir/analysis/absvalue.cpp.o.d"
  "CMakeFiles/warrow_analysis.dir/analysis/checks.cpp.o"
  "CMakeFiles/warrow_analysis.dir/analysis/checks.cpp.o.d"
  "CMakeFiles/warrow_analysis.dir/analysis/constants.cpp.o"
  "CMakeFiles/warrow_analysis.dir/analysis/constants.cpp.o.d"
  "CMakeFiles/warrow_analysis.dir/analysis/constprop.cpp.o"
  "CMakeFiles/warrow_analysis.dir/analysis/constprop.cpp.o.d"
  "CMakeFiles/warrow_analysis.dir/analysis/env.cpp.o"
  "CMakeFiles/warrow_analysis.dir/analysis/env.cpp.o.d"
  "CMakeFiles/warrow_analysis.dir/analysis/interproc.cpp.o"
  "CMakeFiles/warrow_analysis.dir/analysis/interproc.cpp.o.d"
  "CMakeFiles/warrow_analysis.dir/analysis/intra.cpp.o"
  "CMakeFiles/warrow_analysis.dir/analysis/intra.cpp.o.d"
  "CMakeFiles/warrow_analysis.dir/analysis/precision.cpp.o"
  "CMakeFiles/warrow_analysis.dir/analysis/precision.cpp.o.d"
  "CMakeFiles/warrow_analysis.dir/analysis/transfer.cpp.o"
  "CMakeFiles/warrow_analysis.dir/analysis/transfer.cpp.o.d"
  "libwarrow_analysis.a"
  "libwarrow_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warrow_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
