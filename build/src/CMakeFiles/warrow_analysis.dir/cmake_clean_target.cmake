file(REMOVE_RECURSE
  "libwarrow_analysis.a"
)
