
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/absvalue.cpp" "src/CMakeFiles/warrow_analysis.dir/analysis/absvalue.cpp.o" "gcc" "src/CMakeFiles/warrow_analysis.dir/analysis/absvalue.cpp.o.d"
  "/root/repo/src/analysis/checks.cpp" "src/CMakeFiles/warrow_analysis.dir/analysis/checks.cpp.o" "gcc" "src/CMakeFiles/warrow_analysis.dir/analysis/checks.cpp.o.d"
  "/root/repo/src/analysis/constants.cpp" "src/CMakeFiles/warrow_analysis.dir/analysis/constants.cpp.o" "gcc" "src/CMakeFiles/warrow_analysis.dir/analysis/constants.cpp.o.d"
  "/root/repo/src/analysis/constprop.cpp" "src/CMakeFiles/warrow_analysis.dir/analysis/constprop.cpp.o" "gcc" "src/CMakeFiles/warrow_analysis.dir/analysis/constprop.cpp.o.d"
  "/root/repo/src/analysis/env.cpp" "src/CMakeFiles/warrow_analysis.dir/analysis/env.cpp.o" "gcc" "src/CMakeFiles/warrow_analysis.dir/analysis/env.cpp.o.d"
  "/root/repo/src/analysis/interproc.cpp" "src/CMakeFiles/warrow_analysis.dir/analysis/interproc.cpp.o" "gcc" "src/CMakeFiles/warrow_analysis.dir/analysis/interproc.cpp.o.d"
  "/root/repo/src/analysis/intra.cpp" "src/CMakeFiles/warrow_analysis.dir/analysis/intra.cpp.o" "gcc" "src/CMakeFiles/warrow_analysis.dir/analysis/intra.cpp.o.d"
  "/root/repo/src/analysis/precision.cpp" "src/CMakeFiles/warrow_analysis.dir/analysis/precision.cpp.o" "gcc" "src/CMakeFiles/warrow_analysis.dir/analysis/precision.cpp.o.d"
  "/root/repo/src/analysis/transfer.cpp" "src/CMakeFiles/warrow_analysis.dir/analysis/transfer.cpp.o" "gcc" "src/CMakeFiles/warrow_analysis.dir/analysis/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/warrow_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/warrow_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
