# Empty compiler generated dependencies file for warrow_analysis.
# This may be replaced when dependencies are built.
