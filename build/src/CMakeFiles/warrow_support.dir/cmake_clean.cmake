file(REMOVE_RECURSE
  "CMakeFiles/warrow_support.dir/support/interner.cpp.o"
  "CMakeFiles/warrow_support.dir/support/interner.cpp.o.d"
  "CMakeFiles/warrow_support.dir/support/rng.cpp.o"
  "CMakeFiles/warrow_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/warrow_support.dir/support/saturating.cpp.o"
  "CMakeFiles/warrow_support.dir/support/saturating.cpp.o.d"
  "CMakeFiles/warrow_support.dir/support/table.cpp.o"
  "CMakeFiles/warrow_support.dir/support/table.cpp.o.d"
  "CMakeFiles/warrow_support.dir/support/timer.cpp.o"
  "CMakeFiles/warrow_support.dir/support/timer.cpp.o.d"
  "libwarrow_support.a"
  "libwarrow_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warrow_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
