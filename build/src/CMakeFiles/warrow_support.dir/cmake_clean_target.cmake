file(REMOVE_RECURSE
  "libwarrow_support.a"
)
