# Empty compiler generated dependencies file for warrow_support.
# This may be replaced when dependencies are built.
