file(REMOVE_RECURSE
  "CMakeFiles/warrow_workloads.dir/workloads/eq_generators.cpp.o"
  "CMakeFiles/warrow_workloads.dir/workloads/eq_generators.cpp.o.d"
  "CMakeFiles/warrow_workloads.dir/workloads/fuzz_generator.cpp.o"
  "CMakeFiles/warrow_workloads.dir/workloads/fuzz_generator.cpp.o.d"
  "CMakeFiles/warrow_workloads.dir/workloads/spec_generator.cpp.o"
  "CMakeFiles/warrow_workloads.dir/workloads/spec_generator.cpp.o.d"
  "CMakeFiles/warrow_workloads.dir/workloads/wcet_suite.cpp.o"
  "CMakeFiles/warrow_workloads.dir/workloads/wcet_suite.cpp.o.d"
  "libwarrow_workloads.a"
  "libwarrow_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warrow_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
