# Empty dependencies file for warrow_workloads.
# This may be replaced when dependencies are built.
