file(REMOVE_RECURSE
  "libwarrow_workloads.a"
)
