file(REMOVE_RECURSE
  "libwarrow_lang.a"
)
