
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/ast.cpp" "src/CMakeFiles/warrow_lang.dir/lang/ast.cpp.o" "gcc" "src/CMakeFiles/warrow_lang.dir/lang/ast.cpp.o.d"
  "/root/repo/src/lang/cfg.cpp" "src/CMakeFiles/warrow_lang.dir/lang/cfg.cpp.o" "gcc" "src/CMakeFiles/warrow_lang.dir/lang/cfg.cpp.o.d"
  "/root/repo/src/lang/diagnostics.cpp" "src/CMakeFiles/warrow_lang.dir/lang/diagnostics.cpp.o" "gcc" "src/CMakeFiles/warrow_lang.dir/lang/diagnostics.cpp.o.d"
  "/root/repo/src/lang/interp.cpp" "src/CMakeFiles/warrow_lang.dir/lang/interp.cpp.o" "gcc" "src/CMakeFiles/warrow_lang.dir/lang/interp.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/CMakeFiles/warrow_lang.dir/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/warrow_lang.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/warrow_lang.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/warrow_lang.dir/lang/parser.cpp.o.d"
  "/root/repo/src/lang/pretty.cpp" "src/CMakeFiles/warrow_lang.dir/lang/pretty.cpp.o" "gcc" "src/CMakeFiles/warrow_lang.dir/lang/pretty.cpp.o.d"
  "/root/repo/src/lang/sema.cpp" "src/CMakeFiles/warrow_lang.dir/lang/sema.cpp.o" "gcc" "src/CMakeFiles/warrow_lang.dir/lang/sema.cpp.o.d"
  "/root/repo/src/lang/token.cpp" "src/CMakeFiles/warrow_lang.dir/lang/token.cpp.o" "gcc" "src/CMakeFiles/warrow_lang.dir/lang/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/warrow_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
