# Empty dependencies file for warrow_lang.
# This may be replaced when dependencies are built.
