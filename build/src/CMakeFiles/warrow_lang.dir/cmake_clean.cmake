file(REMOVE_RECURSE
  "CMakeFiles/warrow_lang.dir/lang/ast.cpp.o"
  "CMakeFiles/warrow_lang.dir/lang/ast.cpp.o.d"
  "CMakeFiles/warrow_lang.dir/lang/cfg.cpp.o"
  "CMakeFiles/warrow_lang.dir/lang/cfg.cpp.o.d"
  "CMakeFiles/warrow_lang.dir/lang/diagnostics.cpp.o"
  "CMakeFiles/warrow_lang.dir/lang/diagnostics.cpp.o.d"
  "CMakeFiles/warrow_lang.dir/lang/interp.cpp.o"
  "CMakeFiles/warrow_lang.dir/lang/interp.cpp.o.d"
  "CMakeFiles/warrow_lang.dir/lang/lexer.cpp.o"
  "CMakeFiles/warrow_lang.dir/lang/lexer.cpp.o.d"
  "CMakeFiles/warrow_lang.dir/lang/parser.cpp.o"
  "CMakeFiles/warrow_lang.dir/lang/parser.cpp.o.d"
  "CMakeFiles/warrow_lang.dir/lang/pretty.cpp.o"
  "CMakeFiles/warrow_lang.dir/lang/pretty.cpp.o.d"
  "CMakeFiles/warrow_lang.dir/lang/sema.cpp.o"
  "CMakeFiles/warrow_lang.dir/lang/sema.cpp.o.d"
  "CMakeFiles/warrow_lang.dir/lang/token.cpp.o"
  "CMakeFiles/warrow_lang.dir/lang/token.cpp.o.d"
  "libwarrow_lang.a"
  "libwarrow_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warrow_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
